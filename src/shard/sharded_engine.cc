#include "shard/sharded_engine.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <map>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "common/stopwatch.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "fault/fault_injection.h"
#include "shard/merge.h"
#include "telemetry/trace.h"

namespace eclipse {

namespace {

/// Where a live global id sits: which shard, and under which of that
/// shard's local stable ids.
struct ShardLoc {
  uint32_t shard = 0;
  PointId local = 0;
};

constexpr size_t kMaxShards = 1024;

/// Shared state between a deadline-bounded scatter's caller and its
/// detached per-shard tasks. Kept alive by the shared_ptr each task
/// captures, so a straggler abandoned at the deadline keeps writing into
/// its own slots harmlessly after the caller has returned. The box and the
/// context are COPIES: the caller's references die with its stack frame,
/// and the context copy shares the caller's cancel flag, letting the
/// caller hurry stragglers along by cancelling at abandonment.
struct BoundedGather {
  BoundedGather(size_t num_shards, RatioBox b, const QueryContext& c)
      : box(std::move(b)),
        ctx(c),
        remaining(num_shards),
        status(num_shards),
        ids(num_shards),
        sub(num_shards),
        completed(num_shards, 0) {}

  const RatioBox box;
  QueryContext ctx;

  std::mutex mu;
  std::condition_variable cv;
  size_t remaining;  // guarded by mu, like every vector below
  std::vector<Status> status;
  std::vector<std::vector<PointId>> ids;
  std::vector<EngineQueryStats> sub;
  std::vector<uint8_t> completed;
};

/// Cached metric pointers for the sharded serving layer, resolved once at
/// Make so the query path never touches the registry map. Mirrors the
/// per-engine EngineMetrics in engine/eclipse_engine.cc; the registry is
/// SHARED with every per-shard engine, so engine.* counters aggregate
/// across the fleet while sharded.* counters describe the facade.
struct ShardedMetrics {
  bool enabled = false;
  Counter* queries = nullptr;
  Counter* errors = nullptr;
  Counter* deadline_exceeded = nullptr;
  Counter* cancelled = nullptr;
  Counter* partial = nullptr;
  Counter* degraded_shards = nullptr;
  Counter* by_cache = nullptr;
  Counter* by_scatter = nullptr;
  Counter* admitted = nullptr;
  Counter* shed = nullptr;
  Counter* mutations = nullptr;
  LatencyHistogram* latency = nullptr;

  void Init(MetricsRegistry* reg) {
    enabled = true;
    queries = reg->GetCounter("sharded.query.count");
    errors = reg->GetCounter("sharded.query.errors");
    deadline_exceeded = reg->GetCounter("sharded.query.deadline_exceeded");
    cancelled = reg->GetCounter("sharded.query.cancelled");
    partial = reg->GetCounter("sharded.query.partial");
    degraded_shards = reg->GetCounter("sharded.shards.degraded");
    by_cache = reg->GetCounter("sharded.query.answered_by.cache");
    by_scatter = reg->GetCounter("sharded.query.answered_by.scatter");
    admitted = reg->GetCounter("sharded.admission.admitted");
    shed = reg->GetCounter("sharded.admission.shed");
    mutations = reg->GetCounter("sharded.mutation.count");
    latency = reg->GetHistogram("sharded.query.latency_us");
  }
};

}  // namespace

// Mirrors EclipseEngine's pimpl: mutexes pin the state, the facade stays
// movable. `map_mu` guards the id maps, epoch, and next-id counter;
// `write_mu` serializes mutations. Lock order: write_mu before map_mu;
// neither is ever held across a shard engine call... except write_mu in the
// translate-retry path, where holding it is the point (it waits out the
// in-flight mutation that minted a not-yet-published local id).
struct ShardedEclipseEngine::State {
  const ShardedEngineOptions options;
  Partitioner partitioner;
  std::vector<EclipseEngine> shards;
  ResultCache cache;
  ContinuousQueryManager continuous;
  /// Null iff options.engine.enable_metrics is false; otherwise the same
  /// registry every per-shard engine ticks into (Make injects it).
  std::shared_ptr<MetricsRegistry> registry;
  ShardedMetrics metrics;
  /// End-to-end slow-query ring; null iff engine.slow_log_capacity == 0.
  /// The per-shard engines run with their rings disabled (see Make).
  std::unique_ptr<SlowQueryLog> slow_log;
  /// Sharded-level delta-maintenance counters; guarded by map_mu.
  MaintenanceStats maintenance_stats;

  mutable std::mutex map_mu;
  /// Per shard, local id -> global id. Append-only and strictly
  /// increasing (see header invariants); never shrunk by erases so
  /// sub-queries against older shard snapshots can always translate.
  std::vector<std::vector<PointId>> local_to_global;
  /// Live global ids only; erases remove their entry.
  std::unordered_map<PointId, ShardLoc> global_loc;
  PointId next_global_id = 0;
  /// Total mutations across all shards; the sharded cache's epoch.
  uint64_t global_epoch = 0;

  std::mutex write_mu;

  /// Admission-gate counters (relaxed atomics: observability plus the
  /// shed decision, which tolerates benign races at the limit).
  std::atomic<size_t> in_flight{0};
  std::atomic<size_t> peak_in_flight{0};
  std::atomic<uint64_t> admitted{0};
  std::atomic<uint64_t> shed{0};

  /// Detached scatter tasks (deadline-bounded path) still running; the
  /// destructor waits them out so an abandoned straggler can never touch a
  /// freed shard engine.
  std::mutex scatter_mu;
  std::condition_variable scatter_cv;
  size_t outstanding_scatter_tasks = 0;

  State(ShardedEngineOptions opts, Partitioner part)
      : options(std::move(opts)),
        partitioner(std::move(part)),
        cache(options.result_cache_capacity) {
    if (options.engine.enable_metrics) {
      registry = options.engine.metrics != nullptr
                     ? options.engine.metrics
                     : std::make_shared<MetricsRegistry>();
      metrics.Init(registry.get());
    }
    if (options.engine.slow_log_capacity > 0) {
      slow_log = std::make_unique<SlowQueryLog>(
          options.engine.slow_log_capacity,
          options.engine.slow_log_threshold_us);
    }
  }

  ~State() {
    std::unique_lock<std::mutex> lock(scatter_mu);
    scatter_cv.wait(lock, [this] { return outstanding_scatter_tasks == 0; });
  }

  uint64_t Epoch() const {
    std::lock_guard<std::mutex> lock(map_mu);
    return global_epoch;
  }

  /// The plan header shared by Query and Explain: fan-out, policy name,
  /// current global epoch, merge path.
  ShardedQueryPlan PlanHeader(const RatioBox& box) const {
    ShardedQueryPlan plan;
    plan.num_shards = shards.size();
    plan.partitioner = PartitionerName(partitioner.kind());
    plan.global_epoch = Epoch();
    plan.merge_path =
        plan.num_shards == 1
            ? "single-shard passthrough"
            : CrossShardMergePathName(box, options.engine.algorithm);
    return plan;
  }

  /// Whether the per-shard engines return the exact eclipse sets the
  /// delta maintainer reasons about (everything but forced TRAN-HD at
  /// d >= 3; mirrors EclipseEngine's own gate).
  bool ExactServing() const {
    if (options.engine.force_engine.empty()) return true;
    const EngineInfo* info =
        EngineRegistry::Global().Find(options.engine.force_engine);
    return info == nullptr || info->exact ||
           shards.front().snapshot()->dims() < 3;
  }

  bool MaintenanceEnabled() const {
    return options.engine.incremental_maintenance && ExactServing();
  }

  /// Resolves a GLOBAL result-member id to its raw row for the delta
  /// maintainer. Must only be called while write_mu is held: mutations are
  /// the only writers of global_loc, so holding write_mu makes the map
  /// read race-free without re-taking map_mu per member, and the shard
  /// snapshots -- pinned once per shard so the returned pointers outlive
  /// the caller's use -- cannot be republished mid-lookup.
  RowLookup GlobalRowLookup() {
    auto pins = std::make_shared<
        std::vector<std::shared_ptr<const ColumnarSnapshot>>>(shards.size());
    return [this, pins](PointId gid) -> const double* {
      auto it = global_loc.find(gid);
      if (it == global_loc.end()) return nullptr;
      const ShardLoc loc = it->second;
      std::shared_ptr<const ColumnarSnapshot>& snap = (*pins)[loc.shard];
      if (snap == nullptr) snap = shards[loc.shard].snapshot();
      auto row = snap->RowOf(loc.local);
      if (!row.ok()) return nullptr;
      return snap->points()[*row].data();
    };
  }

  void RecordMaintenance(const MaintenanceStats& tick) {
    std::lock_guard<std::mutex> lock(map_mu);
    maintenance_stats += tick;
  }

  /// Translates one shard's ascending local result list to ascending
  /// global ids. A local id beyond the published map means an insert is
  /// mid-flight: acquiring write_mu waits it out, after which the retry
  /// must succeed.
  Status TranslateShard(size_t sh, const std::vector<PointId>& locals,
                        std::vector<PointId>* globals) {
    globals->resize(locals.size());
    {
      std::lock_guard<std::mutex> lock(map_mu);
      const std::vector<PointId>& l2g = local_to_global[sh];
      size_t i = 0;
      for (; i < locals.size() && locals[i] < l2g.size(); ++i) {
        (*globals)[i] = l2g[locals[i]];
      }
      if (i == locals.size()) return Status::OK();
    }
    std::lock_guard<std::mutex> write_lock(write_mu);
    std::lock_guard<std::mutex> lock(map_mu);
    const std::vector<PointId>& l2g = local_to_global[sh];
    for (size_t i = 0; i < locals.size(); ++i) {
      if (locals[i] >= l2g.size()) {
        return Status::Internal(
            StrFormat("shard %zu returned unmapped local id %u", sh,
                      locals[i]));
      }
      (*globals)[i] = l2g[locals[i]];
    }
    return Status::OK();
  }
};

Result<ShardedEclipseEngine> ShardedEclipseEngine::Make(
    PointSet points, ShardedEngineOptions options) {
  if (points.dims() < 2) {
    return Status::InvalidArgument("eclipse requires d >= 2 data");
  }
  if (options.num_shards == 0) {
    options.num_shards = std::max<size_t>(1, ThreadPool::Shared().size());
  }
  if (options.num_shards > kMaxShards) {
    return Status::InvalidArgument(
        StrFormat("num_shards = %zu exceeds the maximum of %zu",
                  options.num_shards, kMaxShards));
  }
  const size_t num_shards = options.num_shards;
  if (options.engine.enable_metrics && options.engine.metrics == nullptr) {
    // One registry shared by the sharded level and every shard, so the
    // shards' engine.* counters aggregate across the fleet and one
    // metrics() call sees both layers.
    options.engine.metrics = std::make_shared<MetricsRegistry>();
  }
  ECLIPSE_ASSIGN_OR_RETURN(
      Partitioner partitioner,
      Partitioner::Make(options.partitioner, points, num_shards));

  // Deal rows to shards in row order: shard_rows[s] is ascending, so local
  // id l in shard s maps to global id shard_rows[s][l] monotonically.
  std::vector<std::vector<PointId>> shard_rows(num_shards);
  const std::vector<uint32_t>& assignment = partitioner.initial_assignment();
  for (size_t i = 0; i < points.size(); ++i) {
    shard_rows[assignment[i]].push_back(static_cast<PointId>(i));
  }

  auto state =
      std::make_unique<State>(std::move(options), std::move(partitioner));
  state->shards.reserve(num_shards);
  // The sharded level owns the slow-query ring (end-to-end latencies);
  // leaving the forwarded capacity on would record one slow query S + 1
  // times, once per sub-query.
  EngineOptions shard_engine_options = state->options.engine;
  shard_engine_options.slow_log_capacity = 0;
  for (size_t s = 0; s < num_shards; ++s) {
    ECLIPSE_ASSIGN_OR_RETURN(
        EclipseEngine engine,
        EclipseEngine::Make(points.Select(shard_rows[s]),
                            shard_engine_options));
    state->shards.push_back(std::move(engine));
    for (size_t l = 0; l < shard_rows[s].size(); ++l) {
      state->global_loc[shard_rows[s][l]] = {static_cast<uint32_t>(s),
                                             static_cast<PointId>(l)};
    }
  }
  state->local_to_global = std::move(shard_rows);
  state->next_global_id = static_cast<PointId>(points.size());
  return ShardedEclipseEngine(std::move(state));
}

ShardedEclipseEngine::ShardedEclipseEngine(std::unique_ptr<State> state)
    : state_(std::move(state)) {}

ShardedEclipseEngine::ShardedEclipseEngine(ShardedEclipseEngine&&) noexcept =
    default;
ShardedEclipseEngine& ShardedEclipseEngine::operator=(
    ShardedEclipseEngine&&) noexcept = default;
ShardedEclipseEngine::~ShardedEclipseEngine() = default;

size_t ShardedEclipseEngine::num_shards() const {
  return state_->shards.size();
}

size_t ShardedEclipseEngine::size() const {
  std::lock_guard<std::mutex> lock(state_->map_mu);
  return state_->global_loc.size();
}

uint64_t ShardedEclipseEngine::global_epoch() const { return state_->Epoch(); }

const ShardedEngineOptions& ShardedEclipseEngine::options() const {
  return state_->options;
}

const Partitioner& ShardedEclipseEngine::partitioner() const {
  return state_->partitioner;
}

EclipseEngine& ShardedEclipseEngine::shard(size_t s) {
  return state_->shards[s];
}

const EclipseEngine& ShardedEclipseEngine::shard(size_t s) const {
  return state_->shards[s];
}

const ResultCache& ShardedEclipseEngine::cache() const {
  return state_->cache;
}

std::shared_ptr<const MetricsRegistry> ShardedEclipseEngine::metrics() const {
  return state_->registry;
}

const SlowQueryLog* ShardedEclipseEngine::slow_log() const {
  return state_->slow_log.get();
}

std::vector<StructureFootprint> ShardedEclipseEngine::StructureFootprints()
    const {
  State& s = *state_;
  // Per-shard structures summed across shards (every shard engine ticks the
  // same shared registry, so the gauges must aggregate the same way).
  std::map<std::string, size_t> totals;
  for (const EclipseEngine& shard : s.shards) {
    for (const StructureFootprint& f : shard.StructureFootprints()) {
      totals[f.structure] += f.bytes;
    }
  }
  size_t id_map_bytes = 0;
  {
    std::lock_guard<std::mutex> lock(s.map_mu);
    for (const auto& l2g : s.local_to_global) {
      id_map_bytes += l2g.size() * sizeof(PointId);
    }
    id_map_bytes += s.global_loc.size() * (sizeof(PointId) + sizeof(ShardLoc));
  }
  std::vector<StructureFootprint> out;
  out.reserve(totals.size() + 2);
  for (const auto& [name, bytes] : totals) out.push_back({name, bytes});
  out.push_back({"sharded_cache", s.cache.MemoryFootprintBytes()});
  out.push_back({"id_maps", id_map_bytes});
  return out;
}

void ShardedEclipseEngine::RefreshStructureGauges() {
  if (state_->registry == nullptr) return;
  for (const StructureFootprint& f : StructureFootprints()) {
    state_->registry
        ->GetGauge("engine.structure.bytes{structure=" + f.structure + "}")
        ->Set(int64_t(f.bytes));
  }
}

ShardedQueryPlan ShardedEclipseEngine::Explain(const RatioBox& box) const {
  State& s = *state_;
  ShardedQueryPlan plan = s.PlanHeader(box);
  bool carried = false;
  plan.cache_hit =
      s.cache.Peek(plan.global_epoch, CanonicalBoxKey(box), &carried);
  plan.answered_incrementally = plan.cache_hit && carried;
  plan.shard_plans.reserve(plan.num_shards);
  for (const EclipseEngine& shard : s.shards) {
    plan.shard_plans.push_back(shard.Explain(box));
  }
  return plan;
}

Result<std::vector<PointId>> ShardedEclipseEngine::Query(
    const RatioBox& box, ShardedQueryStats* stats) {
  return Query(box, /*ctx=*/nullptr, stats);
}

Result<std::vector<PointId>> ShardedEclipseEngine::Query(
    const RatioBox& box, const QueryContext* ctx, ShardedQueryStats* stats) {
  State& s = *state_;
  ECLIPSE_RETURN_IF_ERROR(CheckQueryContext(ctx));
  // The admission gate: shed load with an explicit kUnavailable instead of
  // queuing behind a saturated pool. The check-then-increment CAS loop
  // never lets in_flight exceed the limit; internal queries (continuous
  // re-merges) enter through QueryInternal and are never shed.
  const size_t limit = s.options.max_in_flight_queries;
  if (limit > 0) {
    size_t cur = s.in_flight.load(std::memory_order_relaxed);
    do {
      if (cur >= limit) {
        s.shed.fetch_add(1, std::memory_order_relaxed);
        // Same code point as the AdmissionStats atomic, so the registry's
        // sharded.admission.shed always matches admission().shed exactly.
        if (s.metrics.enabled) s.metrics.shed->Increment();
        return Status::Unavailable(
            StrFormat("admission gate: %zu queries in flight (max %zu)", cur,
                      limit));
      }
    } while (!s.in_flight.compare_exchange_weak(cur, cur + 1,
                                                std::memory_order_relaxed));
  } else {
    s.in_flight.fetch_add(1, std::memory_order_relaxed);
  }
  s.admitted.fetch_add(1, std::memory_order_relaxed);
  if (s.metrics.enabled) s.metrics.admitted->Increment();
  size_t now = s.in_flight.load(std::memory_order_relaxed);
  size_t peak = s.peak_in_flight.load(std::memory_order_relaxed);
  while (now > peak && !s.peak_in_flight.compare_exchange_weak(
                           peak, now, std::memory_order_relaxed)) {
  }
  struct InFlightGuard {
    std::atomic<size_t>* counter;
    ~InFlightGuard() { counter->fetch_sub(1, std::memory_order_relaxed); }
  } guard{&s.in_flight};
  return QueryInternal(box, ctx, stats);
}

AdmissionStats ShardedEclipseEngine::admission() const {
  const State& s = *state_;
  AdmissionStats a;
  a.admitted = s.admitted.load(std::memory_order_relaxed);
  a.shed = s.shed.load(std::memory_order_relaxed);
  a.in_flight = s.in_flight.load(std::memory_order_relaxed);
  a.peak_in_flight = s.peak_in_flight.load(std::memory_order_relaxed);
  return a;
}

Result<std::vector<PointId>> ShardedEclipseEngine::QueryInternal(
    const RatioBox& box, const QueryContext* ctx, ShardedQueryStats* stats) {
  State& s = *state_;
  ShardedQueryStats local_stats;
  ShardedQueryStats* out = stats != nullptr ? stats : &local_stats;
  Trace* trace = TraceOf(ctx);
  // With telemetry fully off (metrics disabled, no slow log, untraced) the
  // wrapper adds nothing -- not even the clock reads.
  if (!s.metrics.enabled && s.slow_log == nullptr && trace == nullptr) {
    return QueryScatter(box, ctx, out);
  }
  TraceSpan span(trace, "sharded.query");
  Stopwatch sw;
  Result<std::vector<PointId>> merged = QueryScatter(box, ctx, out);
  const uint64_t us = uint64_t(sw.ElapsedMicros());
  const ShardedQueryPlan& plan = out->plan;
  const char* answered_by = plan.cache_hit ? "cache" : "scatter";
  if (span.active()) {
    span.SetAttr("shards", uint64_t(plan.num_shards));
    span.SetAttr("answered_by", answered_by);
    if (!merged.ok()) span.SetAttr("status", merged.status().ToString());
    if (plan.partial) {
      span.SetAttr("partial", true);
      span.SetAttr("degraded_reason", plan.degraded_reason);
    }
    span.SetAttr("gathered_candidates", uint64_t(out->gathered_candidates));
    span.SetAttr("result_size", uint64_t(out->result_size));
  }
  if (s.metrics.enabled) {
    s.metrics.queries->Increment();
    s.metrics.latency->Record(us);
    if (merged.ok()) {
      (plan.cache_hit ? s.metrics.by_cache : s.metrics.by_scatter)
          ->Increment();
    } else {
      s.metrics.errors->Increment();
      if (merged.status().IsDeadlineExceeded()) {
        s.metrics.deadline_exceeded->Increment();
      } else if (merged.status().IsCancelled()) {
        s.metrics.cancelled->Increment();
      }
    }
    if (plan.partial) {
      s.metrics.partial->Increment();
      s.metrics.degraded_shards->Increment(plan.shards_degraded.size());
    }
    s.registry->AddStatistics(out->merge_counters);
  }
  if (s.slow_log != nullptr && s.slow_log->ShouldRecord(us)) {
    SlowQueryEntry entry;
    entry.latency_us = us;
    entry.box = CanonicalBoxKey(box);
    entry.engine = "sharded";
    entry.answered_by =
        merged.ok() ? answered_by : merged.status().ToString();
    entry.degraded_reason = plan.degraded_reason;
    entry.partial = plan.partial;
    entry.result_size = out->result_size;
    if (trace != nullptr) {
      // Children closed before this point; the root span is still open.
      std::string breakdown;
      for (const TraceSpanRecord& rec : trace->spans()) {
        if (!breakdown.empty()) breakdown += " ";
        breakdown += rec.name;
        breakdown += "=";
        breakdown += std::to_string(rec.dur_us);
        breakdown += "us";
      }
      entry.breakdown = std::move(breakdown);
    }
    s.slow_log->Record(std::move(entry));
  }
  return merged;
}

Result<std::vector<PointId>> ShardedEclipseEngine::QueryScatter(
    const RatioBox& box, const QueryContext* ctx, ShardedQueryStats* out) {
  State& s = *state_;
  const size_t num_shards = s.shards.size();
  // Callers reuse one stats struct across queries; start from scratch so a
  // previous call's cache_hit / shard_plans / counters cannot leak in.
  *out = ShardedQueryStats{};
  ShardedQueryPlan& plan = out->plan;
  plan = s.PlanHeader(box);

  const std::string key = CanonicalBoxKey(box);
  std::vector<PointId> cached;
  bool carried = false;
  bool cache_hit = false;
  {
    TraceSpan cache_span(TraceOf(ctx), "cache.lookup");
    cache_hit = s.cache.Get(plan.global_epoch, key, &cached, &carried);
    cache_span.SetAttr("hit", cache_hit);
  }
  if (cache_hit) {
    plan.cache_hit = true;
    plan.answered_incrementally = carried;
    out->result_size = cached.size();
    return cached;
  }

  // Scatter: one sub-query per shard. Two shapes:
  //   * joined (the default): a ParallelFor the caller participates in;
  //     every shard must answer before the gather starts. The sub-queries'
  //     own parallel stages nest on the same pool and run inline.
  //   * deadline-bounded (a deadline + allow_partial_results, called from
  //     outside the pool): detached Submit tasks share a BoundedGather and
  //     the caller waits only until the deadline, abandoning stragglers --
  //     a stalled shard costs the deadline, not its own stall. Pool
  //     workers keep the joined shape (blocking a worker on a cv could
  //     deadlock the pool against itself).
  std::vector<EngineQueryStats> sub(num_shards);
  std::vector<std::vector<PointId>> sub_ids(num_shards);
  std::vector<Status> sub_status(num_shards);
  std::vector<uint8_t> responded(num_shards, 1);
  const bool bounded_scatter = ctx != nullptr && ctx->has_deadline() &&
                               s.options.allow_partial_results &&
                               num_shards > 1 &&
                               !ThreadPool::Shared().InParallelRegion();
  // Scatter workers run on pool threads, so they cannot nest under the
  // caller's span via the thread-local stack: each opens its shard.query
  // span with an EXPLICIT parent (the scatter span) and its own track
  // (1 + shard), which Chrome renders as one lane per shard.
  {
    TraceSpan scatter_span(TraceOf(ctx), "scatter");
    const uint64_t scatter_parent = scatter_span.id();
    if (bounded_scatter) {
      auto gather = std::make_shared<BoundedGather>(num_shards, box, *ctx);
      {
        std::lock_guard<std::mutex> lock(s.scatter_mu);
        s.outstanding_scatter_tasks += num_shards;
      }
      State* sp = &s;
      for (size_t sh = 0; sh < num_shards; ++sh) {
        EclipseEngine* shard = &s.shards[sh];
        ThreadPool::Shared().Submit([gather, shard, sp, sh, scatter_parent] {
          // The gather's context copy holds the Trace alive by shared_ptr,
          // so an abandoned straggler's span still records safely.
          TraceSpan shard_span(TraceOf(&gather->ctx), "shard.query",
                               scatter_parent, static_cast<uint32_t>(sh + 1));
          shard_span.SetAttr("shard", uint64_t(sh));
          Status fault =
              ECLIPSE_FAULT_STATUS("shard.scatter", static_cast<int64_t>(sh));
          auto r = fault.ok()
                       ? shard->Query(gather->box, &gather->ctx, &gather->sub[sh])
                       : Result<std::vector<PointId>>(std::move(fault));
          {
            std::lock_guard<std::mutex> lock(gather->mu);
            gather->status[sh] = r.status();
            if (r.ok()) gather->ids[sh] = std::move(r).value();
            gather->completed[sh] = 1;
            --gather->remaining;
          }
          gather->cv.notify_all();
          {
            // Notify while still holding scatter_mu: ~State destroys the cv
            // the moment it sees the count reach zero, so an after-unlock
            // notify could broadcast on a freed condition variable.
            std::lock_guard<std::mutex> lock(sp->scatter_mu);
            --sp->outstanding_scatter_tasks;
            sp->scatter_cv.notify_all();
          }
        });
      }
      std::unique_lock<std::mutex> lock(gather->mu);
      gather->cv.wait_until(lock, ctx->deadline(),
                            [&] { return gather->remaining == 0; });
      // On timeout the stragglers are simply abandoned: their context copy
      // carries the now-expired deadline, so their next poll bails with
      // DeadlineExceeded on its own. (Cancelling the copy here would poison
      // the caller's shared cancel flag and fail the merge below.)
      for (size_t sh = 0; sh < num_shards; ++sh) {
        responded[sh] = gather->completed[sh];
        if (responded[sh] == 0) continue;
        sub_status[sh] = gather->status[sh];
        sub_ids[sh] = std::move(gather->ids[sh]);
        sub[sh] = std::move(gather->sub[sh]);
      }
    } else {
      auto scatter = [&](size_t begin, size_t end) {
        for (size_t sh = begin; sh < end; ++sh) {
          TraceSpan shard_span(TraceOf(ctx), "shard.query", scatter_parent,
                               static_cast<uint32_t>(sh + 1));
          shard_span.SetAttr("shard", uint64_t(sh));
          Status fault =
              ECLIPSE_FAULT_STATUS("shard.scatter", static_cast<int64_t>(sh));
          auto r = fault.ok()
                       ? s.shards[sh].Query(box, ctx, &sub[sh])
                       : Result<std::vector<PointId>>(std::move(fault));
          sub_status[sh] = r.status();
          if (r.ok()) sub_ids[sh] = std::move(r).value();
        }
      };
      ThreadPool::Shared().ParallelFor(0, num_shards, /*grain=*/1, scatter);
    }
  }

  // Degradation policy. Without allow_partial_results the first shard
  // error fails the whole query (the strict contract). With it, a shard
  // that was shed, expired, cancelled, or abandoned contributes nothing --
  // reported in the plan, never silent -- while any other error (a real
  // backend failure) still fails the query.
  for (size_t sh = 0; sh < num_shards; ++sh) {
    Status st = responded[sh] != 0
                    ? sub_status[sh]
                    : Status::DeadlineExceeded(
                          "deadline expired before the shard responded");
    if (st.ok()) continue;
    const bool excusable =
        st.IsDeadlineExceeded() || st.IsUnavailable() || st.IsCancelled();
    if (!s.options.allow_partial_results || !excusable) {
      return st;
    }
    plan.partial = true;
    plan.shards_degraded.push_back(sh);
    if (!plan.degraded_reason.empty()) plan.degraded_reason += "; ";
    plan.degraded_reason +=
        StrFormat("shard %zu: %s", sh, st.ToString().c_str());
    sub_ids[sh].clear();
  }

  plan.shard_plans.reserve(num_shards);
  for (size_t sh = 0; sh < num_shards; ++sh) {
    plan.shard_plans.push_back(std::move(sub[sh].plan));
  }

  // Gather: translate each shard's ascending local winners to global ids.
  std::vector<std::vector<PointId>> sub_globals(num_shards);
  size_t total = 0;
  size_t non_empty = 0;
  size_t last_non_empty = 0;
  {
    TraceSpan translate_span(TraceOf(ctx), "translate");
    for (size_t sh = 0; sh < num_shards; ++sh) {
      ECLIPSE_FAULT_ARG("shard.translate", static_cast<int64_t>(sh));
      ECLIPSE_RETURN_IF_ERROR(
          s.TranslateShard(sh, sub_ids[sh], &sub_globals[sh]));
      total += sub_ids[sh].size();
      if (!sub_ids[sh].empty()) {
        ++non_empty;
        last_non_empty = sh;
      }
    }
  }
  out->gathered_candidates = total;

  std::vector<PointId> merged;
  TraceSpan merge_span(TraceOf(ctx), "gather.merge");
  merge_span.SetAttr("candidates", uint64_t(total));
  if (non_empty <= 1) {
    // A shard's own answer is already dominance-free (E(E(A)) == E(A)), so
    // with every other shard empty it IS the global answer. This is also
    // the whole S == 1 degenerate-sharding path: no merge, no embedding.
    if (non_empty == 1) merged = std::move(sub_globals[last_non_empty]);
  } else {
    ECLIPSE_FAULT("shard.merge");
    std::vector<GatheredCandidate> candidates;
    candidates.reserve(total);
    for (size_t sh = 0; sh < num_shards; ++sh) {
      if (sub_ids[sh].empty()) continue;
      const ColumnarSnapshot& snap = *sub[sh].snapshot;
      const PointSet& rows = snap.points();
      for (size_t i = 0; i < sub_ids[sh].size(); ++i) {
        ECLIPSE_ASSIGN_OR_RETURN(const size_t row, snap.RowOf(sub_ids[sh][i]));
        candidates.push_back({sub_globals[sh][i], rows[row].data()});
      }
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const GatheredCandidate& a, const GatheredCandidate& b) {
                return a.global_id < b.global_id;
              });
    EclipseOptions merge_options = s.options.engine.algorithm;
    // Once the query is partial the caller has accepted degraded service
    // and the deadline has typically already passed; the merge over the
    // gathered winners is small, so run it to completion instead of
    // throwing the partial answer away with a DeadlineExceeded.
    merge_options.context = plan.partial ? nullptr : ctx;
    ECLIPSE_ASSIGN_OR_RETURN(
        merged, CrossShardDominanceMerge(candidates, box.dims(), box,
                                         merge_options,
                                         &out->merge_counters));
  }

  // A partial answer is an attributed lower bound, not the exact result:
  // never cache it (the next query may have the time to do better).
  if (!plan.partial) {
    s.cache.PutMaintainable(plan.global_epoch, key, box, merged);
  }
  out->result_size = merged.size();
  return merged;
}

Result<std::vector<std::vector<PointId>>> ShardedEclipseEngine::QueryBatch(
    std::span<const RatioBox> boxes) {
  return QueryBatch(boxes, /*ctx=*/nullptr);
}

Result<std::vector<std::vector<PointId>>> ShardedEclipseEngine::QueryBatch(
    std::span<const RatioBox> boxes, const QueryContext* ctx) {
  return RunQueryBatch(boxes.size(),
                       [&](size_t q) { return Query(boxes[q], ctx); });
}

Result<PointId> ShardedEclipseEngine::Insert(std::span<const double> p) {
  return ApplyDelta(InsertDelta(Point(p.begin(), p.end())));
}

Status ShardedEclipseEngine::Erase(PointId id) {
  auto erased = ApplyDelta(EraseDelta(id));
  return erased.ok() ? Status::OK() : erased.status();
}

Result<PointId> ShardedEclipseEngine::ApplyDelta(const StreamDelta& delta) {
  State& s = *state_;
  std::lock_guard<std::mutex> write_lock(s.write_mu);
  const bool maintain = s.MaintenanceEnabled();
  MaintenanceStats tick;
  uint64_t old_epoch = 0;
  {
    std::lock_guard<std::mutex> lock(s.map_mu);
    old_epoch = s.global_epoch;
  }

  if (delta.kind == StreamDelta::Kind::kInsert) {
    // Before any state change: a fired fault rejects the delta atomically.
    ECLIPSE_FAULT("sharded.apply_insert");
    // Validate dimensionality BEFORE the delta tests: the maintainer
    // embeds the point, and a short row must fail cleanly here rather
    // than read out of bounds (the per-shard engine would reject it
    // anyway, but only after the maintain pass).
    if (delta.point.size() != s.shards.front().snapshot()->dims()) {
      return Status::InvalidArgument(
          StrFormat("insert of a %zu-dim point into %zu-dim engine",
                    delta.point.size(),
                    s.shards.front().snapshot()->dims()));
    }
    PointId global = 0;
    {
      std::lock_guard<std::mutex> lock(s.map_mu);
      global = s.next_global_id;
    }
    // Pre-mutation: delta-test every sharded-level merged result against
    // the incoming point. The maintained GLOBAL results obey the same
    // skyline math as a single engine's, so carried entries stay exact.
    std::vector<ResultCache::MaintainableEntry> carried;
    if (maintain) {
      ++tick.deltas;
      carried = MaintainEntriesOnInsert(s.cache.MaintainableEntries(old_epoch),
                                        s.GlobalRowLookup(), delta.point,
                                        global, &tick);
    }
    const uint32_t sh = s.partitioner.Route(delta.point, global);
    ECLIPSE_ASSIGN_OR_RETURN(const PointId local,
                             s.shards[sh].Insert(delta.point));
    uint64_t epoch = 0;
    {
      std::lock_guard<std::mutex> lock(s.map_mu);
      if (local != s.local_to_global[sh].size()) {
        return Status::Internal(
            StrFormat("shard %u minted local id %u, expected %zu", sh, local,
                      s.local_to_global[sh].size()));
      }
      s.local_to_global[sh].push_back(global);
      s.global_loc[global] = {sh, local};
      ++s.next_global_id;
      epoch = ++s.global_epoch;
    }
    s.cache.Republish(epoch, std::move(carried));
    s.continuous.OnInsert(delta.point, global, epoch, s.GlobalRowLookup());
    s.RecordMaintenance(tick);
    if (s.metrics.enabled) s.metrics.mutations->Increment();
    return global;
  }

  ECLIPSE_FAULT("sharded.apply_erase");
  ShardLoc loc;
  {
    std::lock_guard<std::mutex> lock(s.map_mu);
    auto it = s.global_loc.find(delta.id);
    if (it == s.global_loc.end()) {
      return Status::NotFound(StrFormat("no live point with id %u",
                                        delta.id));
    }
    loc = it->second;
  }
  std::vector<ResultCache::MaintainableEntry> carried;
  if (maintain) {
    ++tick.deltas;
    carried = MaintainEntriesOnErase(s.cache.MaintainableEntries(old_epoch),
                                     delta.id, &tick);
  }
  ECLIPSE_RETURN_IF_ERROR(s.shards[loc.shard].Erase(loc.local));
  uint64_t epoch = 0;
  {
    std::lock_guard<std::mutex> lock(s.map_mu);
    s.global_loc.erase(delta.id);
    epoch = ++s.global_epoch;
  }
  s.cache.Republish(epoch, std::move(carried));
  // Standing queries that lost a member re-merge through the full
  // scatter-gather path. Safe under write_mu: the maps are fully
  // published, so no sub-result can hit the translate-retry path (which
  // would re-acquire write_mu).
  // The re-merge is an INTERNAL query: it bypasses the admission gate
  // (shedding it would corrupt a standing result).
  s.continuous.OnErase(delta.id, epoch, [this](const RatioBox& box) {
    return QueryInternal(box, /*ctx=*/nullptr, /*stats=*/nullptr);
  });
  s.RecordMaintenance(tick);
  if (s.metrics.enabled) s.metrics.mutations->Increment();
  return delta.id;
}

Result<SubscriptionId> ShardedEclipseEngine::RegisterContinuous(
    const RatioBox& box, ContinuousCallback callback) {
  State& s = *state_;
  std::lock_guard<std::mutex> write_lock(s.write_mu);
  if (!s.ExactServing()) {
    return Status::InvalidArgument(
        "continuous queries require an exact engine (forced TRAN-HD at "
        "d >= 3 under-reports)");
  }
  ECLIPSE_ASSIGN_OR_RETURN(
      auto initial, QueryInternal(box, /*ctx=*/nullptr, /*stats=*/nullptr));
  return s.continuous.Register(box, std::move(initial), std::move(callback));
}

Status ShardedEclipseEngine::UnregisterContinuous(SubscriptionId id) {
  return state_->continuous.Unregister(id);
}

Result<std::vector<PointId>> ShardedEclipseEngine::ContinuousResult(
    SubscriptionId id) const {
  return state_->continuous.Current(id);
}

size_t ShardedEclipseEngine::continuous_queries() const {
  return state_->continuous.size();
}

MaintenanceStats ShardedEclipseEngine::maintenance() const {
  std::lock_guard<std::mutex> lock(state_->map_mu);
  return state_->maintenance_stats;
}

}  // namespace eclipse
