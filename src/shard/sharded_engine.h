// ShardedEclipseEngine: scatter-gather serving over S single-shard engines.
//
// The dataset is split by a pluggable Partitioner into S shards, each owned
// by its own EclipseEngine -- so every shard keeps its own lazy index,
// snapshot epoch chain, and LRU result cache. A query scatters onto
// ThreadPool::Shared() (one sub-query per shard; the per-shard parallel
// stages nest safely on the same pool and run inline), gathers the
// per-shard winners, and filters them through the cross-shard dominance
// merge (shard/merge.h), which is exact for any partition. Results are
// byte-identical to a single EclipseEngine over the whole dataset whenever
// the per-shard engine is exact (every engine but forced TRAN-HD at
// d >= 3).
//
// Id mapping invariants (what keeps the answers byte-identical):
//   * Global ids are minted exactly like a single engine's: the initial
//     rows carry ids 0..n-1 and every Insert mints the next integer, so a
//     sharded and an unsharded engine fed the same mutation sequence agree
//     on every id.
//   * Within a shard, local stable ids are assigned in ascending global-id
//     order (initial rows in row order; each insert takes both the shard's
//     and the global maximum), so the local->global map per shard is
//     strictly increasing and a shard's ascending result list translates
//     to an ascending global list with a single pass.
//   * local->global is append-only (erases tombstone the global map but
//     never reuse a local id), so a sub-query running against an older
//     shard snapshot can still translate every id it returns.
//
// Why shard at all (cf. DESIGN.md "Sharded serving"): mutations are
// copy-on-write O(n d) on a single engine and O(n d / S) here, and they
// invalidate only one shard's index and result cache -- the other S-1
// shards keep serving their cached sub-answers, so a mostly-read stream
// with occasional writes re-does 1/S of the work a single engine re-does.
// A sharded-level LRU (keyed by a global mutation epoch) still serves exact
// repeats without touching any shard.
//
// Consistency: mutations are serialized and linearizable. Each sub-query
// runs against one epoch-consistent shard snapshot, but a query racing a
// mutation may see it reflected on one shard and not another (per-shard
// snapshot isolation, the usual scatter-gather contract; there are no
// cross-shard transactions). Quiescent reads are exact.

#ifndef ECLIPSE_SHARD_SHARDED_ENGINE_H_
#define ECLIPSE_SHARD_SHARDED_ENGINE_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "engine/eclipse_engine.h"
#include "engine/result_cache.h"
#include "shard/partitioner.h"

namespace eclipse {

struct ShardedEngineOptions {
  /// Number of shards; 0 picks the shared pool's worker count (>= 1).
  size_t num_shards = 0;
  PartitionerKind partitioner = PartitionerKind::kRoundRobin;
  /// Forwarded verbatim to every per-shard EclipseEngine.
  EngineOptions engine;
  /// Entries in the sharded-level LRU over merged results (keyed by a
  /// global mutation epoch + canonical box); 0 disables it. Per-shard
  /// caches are configured through `engine` and work either way.
  size_t result_cache_capacity = 64;
};

/// The scatter-gather plan for one query: the fan-out, the merge, and each
/// shard's own sub-plan.
struct ShardedQueryPlan {
  size_t num_shards = 0;
  std::string partitioner;
  /// Global mutation epoch (total Insert/Erase count across all shards).
  uint64_t global_epoch = 0;
  /// The merged result is (or, for Explain, would be) served from the
  /// sharded-level LRU without scattering.
  bool cache_hit = false;
  /// The served sharded-level entry was carried across >= 1 mutation by
  /// the delta maintainer (src/stream/) instead of re-merged.
  bool answered_incrementally = false;
  /// How gathered winners are filtered ("corner-embed + flat skyline");
  /// "single-shard passthrough" when S == 1 needs no merge.
  std::string merge_path;
  /// shard_plans[s] is shard s's own QueryPlan (engine, epoch, cache hit,
  /// skyline path, ...).
  std::vector<QueryPlan> shard_plans;
};

/// Per-query scatter-gather observability.
struct ShardedQueryStats {
  ShardedQueryPlan plan;
  /// Winners gathered across shards before the dominance merge.
  size_t gathered_candidates = 0;
  size_t result_size = 0;
  /// Corner evaluations + skyline comparisons spent by the merge itself
  /// (per-shard work is reported by the shards' own stats).
  Statistics merge_counters;
};

class ShardedEclipseEngine {
 public:
  /// Partitions `points` (d >= 2) and builds one engine per shard. Row i
  /// carries global id i, exactly like EclipseEngine::Make.
  static Result<ShardedEclipseEngine> Make(PointSet points,
                                           ShardedEngineOptions options = {});

  /// Scatter -> gather -> merge. Returns ascending global ids,
  /// byte-identical to a single EclipseEngine's answer. Safe to call
  /// concurrently with every other member.
  Result<std::vector<PointId>> Query(const RatioBox& box,
                                     ShardedQueryStats* stats = nullptr);

  /// Batched admission: the batch fans out on the shared pool and each
  /// query scatters from its worker (the nested ParallelFor runs inline).
  /// Results in input order; first failure wins.
  Result<std::vector<std::vector<PointId>>> QueryBatch(
      std::span<const RatioBox> boxes);

  /// The scatter-gather plan Query() would execute right now, including
  /// every shard's sub-plan; runs nothing and changes no state.
  ShardedQueryPlan Explain(const RatioBox& box) const;

  /// Routes the point through the partitioner, inserts it into that shard,
  /// and returns its global id -- the same id a single engine would mint.
  /// A mutation touches ONLY the owning shard (its engine runs its own
  /// delta maintenance) plus the sharded-level cache, where the delta test
  /// carries forward every merged result the mutation provably does not
  /// change -- the other S - 1 shards' caches and indexes are untouched.
  Result<PointId> Insert(std::span<const double> p);

  /// Erases by global id; NotFound if absent or already erased.
  Status Erase(PointId id);

  /// The streaming mutation entry point (insert or erase by global id);
  /// Insert/Erase are sugar over this. Returns the affected global id.
  Result<PointId> ApplyDelta(const StreamDelta& delta);

  /// Registers a standing query over the GLOBAL dataset: the callback
  /// receives {added, removed} global-id diffs whenever a mutation changes
  /// the box's merged answer. Registration is atomic w.r.t. mutations.
  Result<SubscriptionId> RegisterContinuous(const RatioBox& box,
                                            ContinuousCallback callback);
  Status UnregisterContinuous(SubscriptionId id);
  Result<std::vector<PointId>> ContinuousResult(SubscriptionId id) const;
  size_t continuous_queries() const;

  /// Sharded-level delta-maintenance counters (per-shard counters live on
  /// the shard engines' own maintenance()).
  MaintenanceStats maintenance() const;

  size_t num_shards() const;
  /// Live points across all shards.
  size_t size() const;
  uint64_t global_epoch() const;
  const ShardedEngineOptions& options() const;
  const Partitioner& partitioner() const;
  /// Shard s's engine, for observability and tests (e.g. prewarming an
  /// index via shard(s).BuildIndex() or the BBS tree via
  /// shard(s).BuildBbsTree(); each shard routes to its own tree, so the
  /// scatter-gather merge is unchanged by the output-sensitive path).
  EclipseEngine& shard(size_t s);
  const EclipseEngine& shard(size_t s) const;
  /// The sharded-level LRU (hits/misses/size).
  const ResultCache& cache() const;

  ShardedEclipseEngine(ShardedEclipseEngine&&) noexcept;
  ShardedEclipseEngine& operator=(ShardedEclipseEngine&&) noexcept;
  ~ShardedEclipseEngine();

 private:
  struct State;

  explicit ShardedEclipseEngine(std::unique_ptr<State> state);

  std::unique_ptr<State> state_;
};

}  // namespace eclipse

#endif  // ECLIPSE_SHARD_SHARDED_ENGINE_H_
