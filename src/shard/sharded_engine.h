// ShardedEclipseEngine: scatter-gather serving over S single-shard engines.
//
// The dataset is split by a pluggable Partitioner into S shards, each owned
// by its own EclipseEngine -- so every shard keeps its own lazy index,
// snapshot epoch chain, and LRU result cache. A query scatters onto
// ThreadPool::Shared() (one sub-query per shard; the per-shard parallel
// stages nest safely on the same pool and run inline), gathers the
// per-shard winners, and filters them through the cross-shard dominance
// merge (shard/merge.h), which is exact for any partition. Results are
// byte-identical to a single EclipseEngine over the whole dataset whenever
// the per-shard engine is exact (every engine but forced TRAN-HD at
// d >= 3).
//
// Id mapping invariants (what keeps the answers byte-identical):
//   * Global ids are minted exactly like a single engine's: the initial
//     rows carry ids 0..n-1 and every Insert mints the next integer, so a
//     sharded and an unsharded engine fed the same mutation sequence agree
//     on every id.
//   * Within a shard, local stable ids are assigned in ascending global-id
//     order (initial rows in row order; each insert takes both the shard's
//     and the global maximum), so the local->global map per shard is
//     strictly increasing and a shard's ascending result list translates
//     to an ascending global list with a single pass.
//   * local->global is append-only (erases tombstone the global map but
//     never reuse a local id), so a sub-query running against an older
//     shard snapshot can still translate every id it returns.
//
// Why shard at all (cf. DESIGN.md "Sharded serving"): mutations are
// copy-on-write O(n d) on a single engine and O(n d / S) here, and they
// invalidate only one shard's index and result cache -- the other S-1
// shards keep serving their cached sub-answers, so a mostly-read stream
// with occasional writes re-does 1/S of the work a single engine re-does.
// A sharded-level LRU (keyed by a global mutation epoch) still serves exact
// repeats without touching any shard.
//
// Consistency: mutations are serialized and linearizable. Each sub-query
// runs against one epoch-consistent shard snapshot, but a query racing a
// mutation may see it reflected on one shard and not another (per-shard
// snapshot isolation, the usual scatter-gather contract; there are no
// cross-shard transactions). Quiescent reads are exact.

#ifndef ECLIPSE_SHARD_SHARDED_ENGINE_H_
#define ECLIPSE_SHARD_SHARDED_ENGINE_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "engine/eclipse_engine.h"
#include "engine/result_cache.h"
#include "shard/partitioner.h"

namespace eclipse {

struct ShardedEngineOptions {
  /// Number of shards; 0 picks the shared pool's worker count (>= 1).
  size_t num_shards = 0;
  PartitionerKind partitioner = PartitionerKind::kRoundRobin;
  /// Forwarded verbatim to every per-shard EclipseEngine.
  EngineOptions engine;
  /// Entries in the sharded-level LRU over merged results (keyed by a
  /// global mutation epoch + canonical box); 0 disables it. Per-shard
  /// caches are configured through `engine` and work either way.
  size_t result_cache_capacity = 64;
  /// Admission gate: queries admitted while this many are already in
  /// flight are shed with kUnavailable instead of queuing behind a
  /// saturated pool (load shedding beats unbounded latency). 0 = no limit.
  /// Internal queries (continuous re-merges) bypass the gate -- shedding
  /// them would corrupt standing results.
  size_t max_in_flight_queries = 0;
  /// Graceful degradation under deadlines: a shard whose sub-query is shed
  /// or misses the deadline contributes nothing instead of failing the
  /// whole query. The merged answer is then a lower bound on the true
  /// result, reported with plan.partial = true and the affected shards in
  /// plan.shards_degraded; partial answers are never cached. With a
  /// deadline set this also switches the scatter to detached pool tasks so
  /// the caller can abandon stragglers AT the deadline instead of joining
  /// them (a stalled shard no longer holds p99 hostage). Off by default:
  /// every shard must answer or the query fails.
  bool allow_partial_results = false;
};

/// Load-shedding observability (ShardedEclipseEngine::admission()).
struct AdmissionStats {
  /// Queries that passed the gate (or ran with no limit configured).
  uint64_t admitted = 0;
  /// Queries shed with kUnavailable at the gate.
  uint64_t shed = 0;
  /// Queries in flight right now.
  size_t in_flight = 0;
  /// High-water mark of in_flight.
  size_t peak_in_flight = 0;
};

/// The scatter-gather plan for one query: the fan-out, the merge, and each
/// shard's own sub-plan.
struct ShardedQueryPlan {
  size_t num_shards = 0;
  std::string partitioner;
  /// Global mutation epoch (total Insert/Erase count across all shards).
  uint64_t global_epoch = 0;
  /// The merged result is (or, for Explain, would be) served from the
  /// sharded-level LRU without scattering.
  bool cache_hit = false;
  /// The served sharded-level entry was carried across >= 1 mutation by
  /// the delta maintainer (src/stream/) instead of re-merged.
  bool answered_incrementally = false;
  /// How gathered winners are filtered ("corner-embed + flat skyline");
  /// "single-shard passthrough" when S == 1 needs no merge.
  std::string merge_path;
  /// shard_plans[s] is shard s's own QueryPlan (engine, epoch, cache hit,
  /// skyline path, ...).
  std::vector<QueryPlan> shard_plans;
  /// True iff >= 1 shard contributed nothing (allow_partial_results):
  /// the answer is an exact merge over the responding shards only -- a
  /// lower bound on the full result, explicitly attributed, never cached.
  bool partial = false;
  /// The shards that contributed nothing, ascending.
  std::vector<size_t> shards_degraded;
  /// Why they contributed nothing ("shard 2: deadline expired", ...);
  /// empty when partial is false.
  std::string degraded_reason;
};

/// Per-query scatter-gather observability.
struct ShardedQueryStats {
  ShardedQueryPlan plan;
  /// Winners gathered across shards before the dominance merge.
  size_t gathered_candidates = 0;
  size_t result_size = 0;
  /// Corner evaluations + skyline comparisons spent by the merge itself
  /// (per-shard work is reported by the shards' own stats).
  Statistics merge_counters;
};

class ShardedEclipseEngine {
 public:
  /// Partitions `points` (d >= 2) and builds one engine per shard. Row i
  /// carries global id i, exactly like EclipseEngine::Make.
  static Result<ShardedEclipseEngine> Make(PointSet points,
                                           ShardedEngineOptions options = {});

  /// Scatter -> gather -> merge. Returns ascending global ids,
  /// byte-identical to a single EclipseEngine's answer. Safe to call
  /// concurrently with every other member.
  Result<std::vector<PointId>> Query(const RatioBox& box,
                                     ShardedQueryStats* stats = nullptr);

  /// Query under a borrowed deadline/cancellation context (null behaves
  /// like the two-argument overload) and the admission gate. With
  /// allow_partial_results a deadline turns the scatter into abandonable
  /// pool tasks: the caller returns AT the deadline with whatever shards
  /// answered (plan.partial / plan.shards_degraded attribute the gap);
  /// without it the first shard error or expiry fails the query. `ctx`
  /// must outlive the call (straggler tasks poll a private copy, so the
  /// caller may destroy it as soon as Query returns).
  Result<std::vector<PointId>> Query(const RatioBox& box,
                                     const QueryContext* ctx,
                                     ShardedQueryStats* stats = nullptr);

  /// Batched admission: the batch fans out on the shared pool and each
  /// query scatters from its worker (the nested ParallelFor runs inline).
  /// Results in input order; first failure wins.
  Result<std::vector<std::vector<PointId>>> QueryBatch(
      std::span<const RatioBox> boxes);

  /// QueryBatch under a shared context: every query polls `ctx` and pays
  /// the admission gate individually. Null behaves like the plain overload.
  Result<std::vector<std::vector<PointId>>> QueryBatch(
      std::span<const RatioBox> boxes, const QueryContext* ctx);

  /// Load-shedding counters for the admission gate (zeros when
  /// max_in_flight_queries was never configured).
  AdmissionStats admission() const;

  /// The scatter-gather plan Query() would execute right now, including
  /// every shard's sub-plan; runs nothing and changes no state.
  ShardedQueryPlan Explain(const RatioBox& box) const;

  /// Routes the point through the partitioner, inserts it into that shard,
  /// and returns its global id -- the same id a single engine would mint.
  /// A mutation touches ONLY the owning shard (its engine runs its own
  /// delta maintenance) plus the sharded-level cache, where the delta test
  /// carries forward every merged result the mutation provably does not
  /// change -- the other S - 1 shards' caches and indexes are untouched.
  Result<PointId> Insert(std::span<const double> p);

  /// Erases by global id; NotFound if absent or already erased.
  Status Erase(PointId id);

  /// The streaming mutation entry point (insert or erase by global id);
  /// Insert/Erase are sugar over this. Returns the affected global id.
  Result<PointId> ApplyDelta(const StreamDelta& delta);

  /// Registers a standing query over the GLOBAL dataset: the callback
  /// receives {added, removed} global-id diffs whenever a mutation changes
  /// the box's merged answer. Registration is atomic w.r.t. mutations.
  Result<SubscriptionId> RegisterContinuous(const RatioBox& box,
                                            ContinuousCallback callback);
  Status UnregisterContinuous(SubscriptionId id);
  Result<std::vector<PointId>> ContinuousResult(SubscriptionId id) const;
  size_t continuous_queries() const;

  /// Sharded-level delta-maintenance counters (per-shard counters live on
  /// the shard engines' own maintenance()).
  MaintenanceStats maintenance() const;

  size_t num_shards() const;
  /// Live points across all shards.
  size_t size() const;
  uint64_t global_epoch() const;
  const ShardedEngineOptions& options() const;
  const Partitioner& partitioner() const;
  /// Shard s's engine, for observability and tests (e.g. prewarming an
  /// index via shard(s).BuildIndex() or the BBS tree via
  /// shard(s).BuildBbsTree(); each shard routes to its own tree, so the
  /// scatter-gather merge is unchanged by the output-sensitive path).
  EclipseEngine& shard(size_t s);
  const EclipseEngine& shard(size_t s) const;
  /// The sharded-level LRU (hits/misses/size).
  const ResultCache& cache() const;
  /// The metrics registry shared by the sharded level (sharded.* metrics)
  /// and every per-shard engine (engine.* metrics aggregate across shards).
  /// Null iff options.engine.enable_metrics is false.
  std::shared_ptr<const MetricsRegistry> metrics() const;
  /// The sharded-level slow-query ring, logging end-to-end queries (the
  /// forwarded per-shard engines run with their slow logs disabled so one
  /// slow query is not recorded S + 1 times). Null iff
  /// options.engine.slow_log_capacity == 0.
  const SlowQueryLog* slow_log() const;

  /// Live byte totals: every per-shard structure summed across shards
  /// (snapshot / index / bbs_tree / diagram / result_cache), plus the
  /// sharded-level LRU ("sharded_cache") and the global<->local id maps
  /// ("id_maps"). See DESIGN.md "Memory accounting".
  std::vector<StructureFootprint> StructureFootprints() const;
  /// Publishes StructureFootprints() as engine.structure.bytes{structure=
  /// ...} gauges in the shared registry. Called by scrape paths; no-op when
  /// metrics are disabled.
  void RefreshStructureGauges();

  ShardedEclipseEngine(ShardedEclipseEngine&&) noexcept;
  ShardedEclipseEngine& operator=(ShardedEclipseEngine&&) noexcept;
  ~ShardedEclipseEngine();

 private:
  struct State;

  explicit ShardedEclipseEngine(std::unique_ptr<State> state);

  /// The scatter-gather core behind Query: admission-gate-free, so the
  /// continuous-query re-merge path cannot be shed (a shed re-merge would
  /// corrupt a standing result). Wraps QueryScatter with the telemetry
  /// envelope (root span, latency histogram, answered_by counters,
  /// slow-log record).
  Result<std::vector<PointId>> QueryInternal(const RatioBox& box,
                                             const QueryContext* ctx,
                                             ShardedQueryStats* stats);

  /// The scatter -> gather -> merge body; `out` is never null.
  Result<std::vector<PointId>> QueryScatter(const RatioBox& box,
                                            const QueryContext* ctx,
                                            ShardedQueryStats* out);

  std::unique_ptr<State> state_;
};

}  // namespace eclipse

#endif  // ECLIPSE_SHARD_SHARDED_ENGINE_H_
