#include "shard/partitioner.h"

#include <algorithm>
#include <cstdint>

#include "common/strings.h"

namespace eclipse {

namespace {

/// SplitMix64's finalizer: a strong 64-bit mix so consecutive global ids
/// land on unrelated shards.
uint64_t MixId(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

const char* PartitionerName(PartitionerKind kind) {
  switch (kind) {
    case PartitionerKind::kRoundRobin:
      return "round-robin";
    case PartitionerKind::kHashId:
      return "hash-id";
    case PartitionerKind::kAngular:
      return "angular";
  }
  return "unknown";
}

Result<PartitionerKind> PartitionerKindForName(std::string_view name) {
  for (PartitionerKind kind : AllPartitioners()) {
    if (name == PartitionerName(kind)) return kind;
  }
  return Status::InvalidArgument(
      StrFormat("unknown partitioner \"%.*s\" (choices: round-robin, "
                "hash-id, angular)",
                static_cast<int>(name.size()), name.data()));
}

std::vector<PartitionerKind> AllPartitioners() {
  return {PartitionerKind::kRoundRobin, PartitionerKind::kHashId,
          PartitionerKind::kAngular};
}

double AngularKey(std::span<const double> p) {
  double sum = 0.0;
  for (double v : p) sum += v;
  if (sum == 0.0) return 0.5;
  return p[0] / sum;
}

Result<Partitioner> Partitioner::Make(PartitionerKind kind,
                                      const PointSet& points,
                                      size_t num_shards) {
  if (num_shards == 0) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  Partitioner part(kind, num_shards);
  const size_t n = points.size();
  if (kind == PartitionerKind::kAngular && num_shards > 1) {
    // Shard s takes keys in (boundary[s-1], boundary[s]]: boundaries are
    // the equal-count quantiles of the key over the initial rows, so the
    // initial placement is balanced whenever the keys are spread out.
    std::vector<double> keys(n);
    for (size_t i = 0; i < n; ++i) keys[i] = AngularKey(points[i]);
    std::vector<double> sorted = keys;
    std::sort(sorted.begin(), sorted.end());
    part.boundaries_.reserve(num_shards - 1);
    for (size_t s = 1; s < num_shards; ++s) {
      part.boundaries_.push_back(
          n == 0 ? 0.0 : sorted[std::min(n - 1, s * n / num_shards)]);
    }
  }
  part.assignment_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    part.assignment_[i] = part.Route(points[i], static_cast<PointId>(i));
  }
  return part;
}

uint32_t Partitioner::Route(std::span<const double> p,
                            PointId global_id) const {
  if (num_shards_ == 1) return 0;
  switch (kind_) {
    case PartitionerKind::kRoundRobin:
      return static_cast<uint32_t>(global_id % num_shards_);
    case PartitionerKind::kHashId:
      return static_cast<uint32_t>(MixId(global_id) % num_shards_);
    case PartitionerKind::kAngular: {
      const double key = AngularKey(p);
      const auto it =
          std::lower_bound(boundaries_.begin(), boundaries_.end(), key);
      return static_cast<uint32_t>(it - boundaries_.begin());
    }
  }
  return 0;
}

}  // namespace eclipse
