#include "core/corner_kernel.h"

#include <algorithm>
#include <cassert>
#include <thread>

namespace eclipse {

namespace {

/// Rows per block in the batch loop: a block of points stays resident in L1
/// while every corner weight vector streams over it once.
constexpr size_t kRowBlock = 64;

}  // namespace

CornerKernel::CornerKernel(const RatioBox& box)
    : dims_(box.dims()),
      corners_(box.CornerWeightVectors()),
      unbounded_dims_(box.UnboundedDims()) {}

double CornerKernel::Score(std::span<const double> p,
                           std::span<const double> w) {
  assert(p.size() == w.size());
  double acc = 0.0;
  for (size_t j = 0; j < p.size(); ++j) acc += p[j] * w[j];
  return acc;
}

void CornerKernel::EmbedInto(std::span<const double> p, double* out) const {
  size_t k = 0;
  for (const Point& w : corners_) out[k++] = Score(p, w);
  for (size_t j : unbounded_dims_) out[k++] = p[j];
}

Point CornerKernel::Embed(std::span<const double> p) const {
  Point v(embedding_dims());
  EmbedInto(p, v.data());
  return v;
}

bool CornerKernel::Dominates(std::span<const double> p,
                             std::span<const double> q) const {
  bool strict = false;
  for (const Point& w : corners_) {
    const double sp = Score(p, w);
    const double sq = Score(q, w);
    if (sp > sq) return false;
    if (sp < sq) strict = true;
  }
  for (size_t j : unbounded_dims_) {
    if (p[j] > q[j]) return false;
    if (p[j] < q[j]) strict = true;
  }
  return strict;
}

void CornerKernel::EmbedRows(const PointSet& points, size_t begin, size_t end,
                             double* out) const {
  const size_t d = dims_;
  const size_t m = embedding_dims();
  const size_t num_corners = corners_.size();
  const double* data = points.data().data();
  for (size_t block = begin; block < end; block += kRowBlock) {
    const size_t block_end = std::min(block + kRowBlock, end);
    for (size_t c = 0; c < num_corners; ++c) {
      const double* w = corners_[c].data();
      for (size_t i = block; i < block_end; ++i) {
        const double* p = data + i * d;
        double acc = 0.0;
        for (size_t j = 0; j < d; ++j) acc += p[j] * w[j];
        out[(i - begin) * m + c] = acc;
      }
    }
    for (size_t u = 0; u < unbounded_dims_.size(); ++u) {
      const size_t j = unbounded_dims_[u];
      for (size_t i = block; i < block_end; ++i) {
        out[(i - begin) * m + num_corners + u] = data[i * d + j];
      }
    }
  }
}

std::vector<double> CornerKernel::EmbedAll(const PointSet& points,
                                           Statistics* stats) const {
  assert(points.dims() == dims_ || points.empty());
  const size_t n = points.size();
  const size_t m = embedding_dims();
  std::vector<double> scores(n * m);
  EmbedRows(points, 0, n, scores.data());
  if (stats != nullptr) {
    stats->Add(Ticker::kCornerScoreEvaluations, n * m);
  }
  return scores;
}

std::vector<double> CornerKernel::EmbedAllParallel(const PointSet& points,
                                                   size_t num_threads,
                                                   Statistics* stats) const {
  assert(points.dims() == dims_ || points.empty());
  const size_t n = points.size();
  const size_t m = embedding_dims();
  std::vector<double> scores(n * m);
  if (num_threads == 0) {
    num_threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  num_threads = std::min(num_threads, std::max<size_t>(1, n));
  if (num_threads == 1) {
    EmbedRows(points, 0, n, scores.data());
  } else {
    std::vector<std::thread> threads;
    const size_t chunk = (n + num_threads - 1) / num_threads;
    for (size_t t = 0; t < num_threads; ++t) {
      const size_t begin = t * chunk;
      const size_t end = std::min(begin + chunk, n);
      if (begin >= end) break;
      threads.emplace_back([this, &points, begin, end, m, &scores] {
        EmbedRows(points, begin, end, scores.data() + begin * m);
      });
    }
    for (auto& th : threads) th.join();
  }
  if (stats != nullptr) {
    stats->Add(Ticker::kCornerScoreEvaluations, n * m);
  }
  return scores;
}

Result<PointSet> CornerKernel::EmbedAllAsPointSet(const PointSet& points,
                                                  Statistics* stats) const {
  return PointSet::FromFlat(embedding_dims(), EmbedAll(points, stats));
}

}  // namespace eclipse
