#include "core/corner_kernel.h"

#include <algorithm>
#include <cassert>

#include "common/thread_pool.h"
#include "skyline/dominance.h"

namespace eclipse {

namespace {

/// Rows per block in the column-major loop: a block of partial sums stays
/// resident while every (corner, attribute) coefficient streams over it.
/// 128 rows x ~20 attributes x 8 bytes comfortably fits L2 even for the
/// widest supported datasets.
constexpr size_t kRowBlock = 128;

}  // namespace

CornerKernel::CornerKernel(const RatioBox& box)
    : dims_(box.dims()),
      corners_(box.CornerWeightVectors()),
      unbounded_dims_(box.UnboundedDims()) {}

double CornerKernel::Score(std::span<const double> p,
                           std::span<const double> w) {
  assert(p.size() == w.size());
  double acc = 0.0;
  for (size_t j = 0; j < p.size(); ++j) acc += p[j] * w[j];
  return acc;
}

void CornerKernel::EmbedInto(std::span<const double> p, double* out) const {
  size_t k = 0;
  for (const Point& w : corners_) out[k++] = Score(p, w);
  for (size_t j : unbounded_dims_) out[k++] = p[j];
}

Point CornerKernel::Embed(std::span<const double> p) const {
  Point v(embedding_dims());
  EmbedInto(p, v.data());
  return v;
}

bool CornerKernel::Dominates(std::span<const double> p,
                             std::span<const double> q) const {
  // The shared streaming predicate (skyline/dominance.h): each corner score
  // pair is computed lazily so the loop stops at the first violated corner.
  DominanceAccumulator acc;
  for (const Point& w : corners_) {
    if (!acc.Observe(Score(p, w), Score(q, w))) return false;
  }
  for (size_t j : unbounded_dims_) {
    if (!acc.Observe(p[j], q[j])) return false;
  }
  return acc.strict();
}

void CornerKernel::EmbedColumns(std::span<const double* const> cols,
                                size_t stride, size_t begin, size_t end,
                                double* out) const {
  const size_t d = dims_;
  const size_t m = embedding_dims();
  const size_t num_corners = corners_.size();
  double acc[kRowBlock];
  for (size_t block = begin; block < end; block += kRowBlock) {
    const size_t bn = std::min(kRowBlock, end - block);
    for (size_t c = 0; c < num_corners; ++c) {
      const double* w = corners_[c].data();
      std::fill_n(acc, bn, 0.0);
      // Accumulate attribute-by-attribute so each coefficient w[j] is
      // broadcast over a contiguous (stride 1) or strided column slice.
      // The per-element addition order is j ascending, the same order as
      // the scalar Score(), so every layout yields identical doubles.
      for (size_t j = 0; j < d; ++j) {
        const double wj = w[j];
        const double* col = cols[j] + block * stride;
        for (size_t i = 0; i < bn; ++i) acc[i] += col[i * stride] * wj;
      }
      for (size_t i = 0; i < bn; ++i) out[(block - begin + i) * m + c] = acc[i];
    }
    for (size_t u = 0; u < unbounded_dims_.size(); ++u) {
      const double* col = cols[unbounded_dims_[u]] + block * stride;
      for (size_t i = 0; i < bn; ++i) {
        out[(block - begin + i) * m + num_corners + u] = col[i * stride];
      }
    }
  }
}

std::vector<const double*> CornerKernel::StridedColumns(
    const PointSet& points) {
  std::vector<const double*> cols(points.dims());
  if (points.empty()) return cols;  // data() may be null: no offsets (UB)
  const double* data = points.data().data();
  for (size_t j = 0; j < points.dims(); ++j) cols[j] = data + j;
  return cols;
}

std::vector<const double*> CornerKernel::SnapshotColumns(
    const ColumnarSnapshot& snapshot) {
  std::vector<const double*> cols(snapshot.dims());
  for (size_t j = 0; j < snapshot.dims(); ++j) {
    cols[j] = snapshot.column(j).data();
  }
  return cols;
}

std::vector<double> CornerKernel::EmbedAllImpl(
    std::span<const double* const> cols, size_t stride, size_t n,
    Statistics* stats) const {
  const size_t m = embedding_dims();
  std::vector<double> scores(n * m);
  EmbedColumns(cols, stride, 0, n, scores.data());
  if (stats != nullptr) {
    stats->Add(Ticker::kCornerScoreEvaluations, n * m);
  }
  return scores;
}

std::vector<double> CornerKernel::EmbedAllParallelImpl(
    std::span<const double* const> cols, size_t stride, size_t n,
    size_t num_threads, Statistics* stats) const {
  const size_t m = embedding_dims();
  std::vector<double> scores(n * m);
  double* out = scores.data();
  ThreadPool::Shared().ParallelFor(
      0, n, kRowBlock,
      [&](size_t begin, size_t end) {
        EmbedColumns(cols, stride, begin, end, out + begin * m);
      },
      num_threads);
  if (stats != nullptr) {
    stats->Add(Ticker::kCornerScoreEvaluations, n * m);
  }
  return scores;
}

std::vector<double> CornerKernel::EmbedAll(const ColumnarSnapshot& snapshot,
                                           Statistics* stats) const {
  assert(snapshot.dims() == dims_ || snapshot.empty());
  return EmbedAllImpl(SnapshotColumns(snapshot), 1, snapshot.size(), stats);
}

std::vector<double> CornerKernel::EmbedAll(const PointSet& points,
                                           Statistics* stats) const {
  assert(points.dims() == dims_ || points.empty());
  return EmbedAllImpl(StridedColumns(points), points.dims(), points.size(),
                      stats);
}

std::vector<double> CornerKernel::EmbedAllParallel(
    const ColumnarSnapshot& snapshot, size_t num_threads,
    Statistics* stats) const {
  assert(snapshot.dims() == dims_ || snapshot.empty());
  return EmbedAllParallelImpl(SnapshotColumns(snapshot), 1, snapshot.size(),
                              num_threads, stats);
}

std::vector<double> CornerKernel::EmbedAllParallel(const PointSet& points,
                                                   size_t num_threads,
                                                   Statistics* stats) const {
  assert(points.dims() == dims_ || points.empty());
  return EmbedAllParallelImpl(StridedColumns(points), points.dims(),
                              points.size(), num_threads, stats);
}

Result<PointSet> CornerKernel::EmbedAllAsPointSet(const PointSet& points,
                                                  Statistics* stats) const {
  return PointSet::FromFlat(embedding_dims(), EmbedAll(points, stats));
}

}  // namespace eclipse
