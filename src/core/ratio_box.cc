#include "core/ratio_box.h"

#include <cmath>

#include "common/strings.h"

namespace eclipse {

Result<RatioBox> RatioBox::Make(std::vector<RatioRange> ranges) {
  if (ranges.empty()) {
    return Status::InvalidArgument("RatioBox needs at least one ratio range");
  }
  for (size_t j = 0; j < ranges.size(); ++j) {
    const RatioRange& r = ranges[j];
    if (std::isnan(r.lo) || std::isnan(r.hi) || std::isinf(r.lo)) {
      return Status::InvalidArgument(
          StrFormat("ratio range %zu: lo must be finite, bounds non-NaN", j));
    }
    if (r.lo < 0.0 || r.hi < r.lo) {
      return Status::InvalidArgument(
          StrFormat("ratio range %zu: need 0 <= lo <= hi, got [%g, %g]", j,
                    r.lo, r.hi));
    }
  }
  return RatioBox(std::move(ranges));
}

Result<RatioBox> RatioBox::Uniform(size_t num_ratios, double lo, double hi) {
  return Make(std::vector<RatioRange>(num_ratios, RatioRange{lo, hi}));
}

RatioBox RatioBox::Skyline(size_t num_ratios) {
  auto r = Make(std::vector<RatioRange>(
      num_ratios,
      RatioRange{0.0, std::numeric_limits<double>::infinity()}));
  return *r;  // always valid
}

Result<RatioBox> RatioBox::OneNN(std::vector<double> ratios) {
  std::vector<RatioRange> ranges;
  ranges.reserve(ratios.size());
  for (double r : ratios) ranges.push_back(RatioRange{r, r});
  return Make(std::move(ranges));
}

Result<RatioBox> RatioBox::FromAngles2D(double angle_lo_deg,
                                        double angle_hi_deg) {
  if (!(90.0 < angle_lo_deg && angle_lo_deg <= angle_hi_deg &&
        angle_hi_deg < 180.0)) {
    return Status::InvalidArgument(
        StrFormat("angles must satisfy 90 < lo <= hi < 180, got [%g, %g]",
                  angle_lo_deg, angle_hi_deg));
  }
  constexpr double kDegToRad = M_PI / 180.0;
  const double lo = std::tan((180.0 - angle_hi_deg) * kDegToRad);
  const double hi = std::tan((180.0 - angle_lo_deg) * kDegToRad);
  return Make({RatioRange{lo, hi}});
}

bool RatioBox::AnyUnbounded() const {
  for (const auto& r : ranges_) {
    if (r.unbounded()) return true;
  }
  return false;
}

bool RatioBox::AllDegenerate() const {
  for (const auto& r : ranges_) {
    if (!r.degenerate()) return false;
  }
  return true;
}

std::vector<size_t> RatioBox::UnboundedDims() const {
  std::vector<size_t> out;
  for (size_t j = 0; j < ranges_.size(); ++j) {
    if (ranges_[j].unbounded()) out.push_back(j);
  }
  return out;
}

std::vector<size_t> RatioBox::FreeDims() const {
  std::vector<size_t> out;
  for (size_t j = 0; j < ranges_.size(); ++j) {
    if (!ranges_[j].unbounded() && !ranges_[j].degenerate()) out.push_back(j);
  }
  return out;
}

Result<Box> RatioBox::DualQueryBox() const {
  if (AnyUnbounded()) {
    return Status::InvalidArgument(
        "dual query box requires bounded ratio ranges");
  }
  std::vector<Interval> sides(ranges_.size());
  for (size_t j = 0; j < ranges_.size(); ++j) {
    sides[j] = Interval{-ranges_[j].hi, -ranges_[j].lo};
  }
  return Box(std::move(sides));
}

std::vector<Point> RatioBox::CornerWeightVectors() const {
  const std::vector<size_t> free = FreeDims();
  const size_t k = free.size();
  const size_t d = dims();
  std::vector<Point> corners;
  corners.reserve(size_t{1} << k);
  for (size_t mask = 0; mask < (size_t{1} << k); ++mask) {
    Point w(d);
    for (size_t j = 0; j < ranges_.size(); ++j) {
      w[j] = ranges_[j].lo;  // degenerate and unbounded dims pinned at lo
    }
    for (size_t b = 0; b < k; ++b) {
      if (mask & (size_t{1} << b)) w[free[b]] = ranges_[free[b]].hi;
    }
    w[d - 1] = 1.0;
    corners.push_back(std::move(w));
  }
  return corners;
}

std::string RatioBox::ToString() const {
  std::string out = "r in ";
  for (size_t j = 0; j < ranges_.size(); ++j) {
    if (j > 0) out += " x ";
    if (ranges_[j].unbounded()) {
      out += StrFormat("[%g, +inf)", ranges_[j].lo);
    } else {
      out += StrFormat("[%g, %g]", ranges_[j].lo, ranges_[j].hi);
    }
  }
  return out;
}

}  // namespace eclipse
