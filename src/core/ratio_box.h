// RatioBox: the eclipse query parameter.
//
// An eclipse query over d-dimensional points specifies, for each dimension
// j = 1..d-1, a range [l_j, h_j] for the attribute weight ratio
// r[j] = w[j] / w[d]. The box generalizes both classic operators:
//   * [l, l]      -> 1NN with ratio l (the set of score minimizers),
//   * [0, +inf)   -> the skyline.
// Dominance over the box reduces to the 2^(d-1) corner weight vectors
// (paper Theorems 1-2); unbounded dimensions contribute a coordinatewise
// condition instead of a corner (the coefficient of an unbounded direction
// must be nonpositive).

#ifndef ECLIPSE_CORE_RATIO_BOX_H_
#define ECLIPSE_CORE_RATIO_BOX_H_

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "common/result.h"
#include "geometry/box.h"

namespace eclipse {

/// One attribute weight ratio range [lo, hi]; 0 <= lo <= hi, hi may be
/// +infinity, lo must be finite.
struct RatioRange {
  double lo = 0.0;
  double hi = std::numeric_limits<double>::infinity();

  bool degenerate() const { return lo == hi; }
  bool unbounded() const { return std::isinf(hi); }
};

/// The full query: one RatioRange per non-reference dimension (d-1 ranges
/// for d-dimensional data).
class RatioBox {
 public:
  /// Validates: at least one range, lo finite, 0 <= lo <= hi.
  static Result<RatioBox> Make(std::vector<RatioRange> ranges);

  /// The paper's default style: the same [lo, hi] for every ratio.
  static Result<RatioBox> Uniform(size_t num_ratios, double lo, double hi);

  /// Skyline instantiation: [0, +inf) in every ratio.
  static RatioBox Skyline(size_t num_ratios);

  /// 1NN instantiation: [r_j, r_j] for the given ratio vector.
  static Result<RatioBox> OneNN(std::vector<double> ratios);

  /// 2D helper matching the paper's Table IV "angle" parameterization: the
  /// two domination lines make angles [angle_lo, angle_hi] (degrees, in
  /// (90, 180)) with the positive x axis, i.e.
  /// l = tan(180 - angle_hi), h = tan(180 - angle_lo).
  static Result<RatioBox> FromAngles2D(double angle_lo_deg,
                                       double angle_hi_deg);

  size_t num_ratios() const { return ranges_.size(); }
  /// Data dimensionality this box queries: num_ratios() + 1.
  size_t dims() const { return ranges_.size() + 1; }
  const RatioRange& range(size_t j) const { return ranges_[j]; }
  const std::vector<RatioRange>& ranges() const { return ranges_; }

  bool AnyUnbounded() const;
  /// True iff every range is a single value (pure 1NN query).
  bool AllDegenerate() const;

  /// Indices of unbounded ratios (hi == +inf).
  std::vector<size_t> UnboundedDims() const;
  /// Indices of bounded, non-degenerate ratios -- the "free" corner dims.
  std::vector<size_t> FreeDims() const;

  /// The corresponding query box in the dual slope space: side j is
  /// [-hi_j, -lo_j]. InvalidArgument when any range is unbounded (index
  /// engines require a bounded dual box).
  Result<Box> DualQueryBox() const;

  /// The weight vectors of the box corners: each has d entries, entry d-1
  /// fixed to 1. Unbounded dims are pinned at lo (their corner condition is
  /// handled separately), degenerate dims at their single value; free dims
  /// enumerate {lo, hi}. 2^|FreeDims| vectors.
  std::vector<Point> CornerWeightVectors() const;

  std::string ToString() const;

 private:
  explicit RatioBox(std::vector<RatioRange> ranges)
      : ranges_(std::move(ranges)) {}
  std::vector<RatioRange> ranges_;
};

}  // namespace eclipse

#endif  // ECLIPSE_CORE_RATIO_BOX_H_
