#include "core/dominance_oracle.h"

#include <cassert>

namespace eclipse {

DominanceOracle::DominanceOracle(const RatioBox& box)
    : corners_(box.CornerWeightVectors()), unbounded_dims_(box.UnboundedDims()) {}

double DominanceOracle::Score(std::span<const double> p,
                              std::span<const double> w) {
  assert(p.size() == w.size());
  double acc = 0.0;
  for (size_t j = 0; j < p.size(); ++j) acc += p[j] * w[j];
  return acc;
}

bool DominanceOracle::Dominates(std::span<const double> p,
                                std::span<const double> q) const {
  bool strict = false;
  for (const Point& w : corners_) {
    const double sp = Score(p, w);
    const double sq = Score(q, w);
    if (sp > sq) return false;
    if (sp < sq) strict = true;
  }
  for (size_t j : unbounded_dims_) {
    if (p[j] > q[j]) return false;
    if (p[j] < q[j]) strict = true;
  }
  return strict;
}

Point DominanceOracle::Embed(std::span<const double> p) const {
  Point v;
  v.reserve(EmbeddingDims());
  for (const Point& w : corners_) v.push_back(Score(p, w));
  for (size_t j : unbounded_dims_) v.push_back(p[j]);
  return v;
}

}  // namespace eclipse
