// TRAN, general d (paper Algorithm 3 / Theorem 6).
//
// Maps each point to the d-vector of intercepts of its d chosen domination
// hyperplanes (the all-lo corner plus the d-1 single-flip corners) and takes
// the skyline of the mapped set.
//
// CAVEAT (DESIGN.md finding F1): the paper's Theorem 6 claims this is exact,
// but the d chosen corners only span -- not conically generate -- the full
// 2^(d-1) corner set, so for d >= 3 the mapping can declare dominance that
// does not hold over the whole ratio box. The result is a subset of the true
// eclipse set: exact for d == 2, an under-approximation for d >= 3. Use
// EclipseCornerSkyline for an exact transformation at any d.
//
// Corner scores are evaluated inside TransformToCSpace via the shared
// CornerKernel scoring primitive (core/corner_kernel.h).

#include "core/eclipse.h"

namespace eclipse {

Result<std::vector<PointId>> EclipseTransformHD(const PointSet& points,
                                                const RatioBox& box,
                                                const EclipseOptions& options,
                                                Statistics* stats) {
  ECLIPSE_ASSIGN_OR_RETURN(PointSet c, TransformToCSpace(points, box));
  return ComputeSkyline(c, options.skyline_algorithm, stats);
}

}  // namespace eclipse
