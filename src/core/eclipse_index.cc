#include "core/eclipse_index.h"

#include <algorithm>
#include <cmath>
#include <mutex>

#include "common/strings.h"
#include "common/thread_pool.h"
#include "dual/order_vector.h"

namespace eclipse {

const char* IndexKindName(IndexKind kind) {
  switch (kind) {
    case IndexKind::kAuto:
      return "auto";
    case IndexKind::kLineQuadtree:
      return "QUAD";
    case IndexKind::kCuttingTree:
      return "CUTTING";
  }
  return "unknown";
}

Result<EclipseIndex> EclipseIndex::Build(const PointSet& points,
                                         const IndexBuildOptions& options) {
  if (points.dims() < 2) {
    return Status::InvalidArgument("EclipseIndex requires d >= 2 data");
  }
  const size_t k = points.dims() - 1;

  EclipseIndex out;
  out.dims_ = points.dims();
  out.kind_ = options.kind;

  // Resolve the query domain.
  std::vector<RatioRange> domain_ranges = options.domain;
  if (domain_ranges.empty()) {
    domain_ranges.assign(k, kDefaultIndexDomainRange);
  }
  if (domain_ranges.size() != k) {
    return Status::InvalidArgument(
        StrFormat("domain has %zu ranges, expected d-1 = %zu",
                  domain_ranges.size(), k));
  }
  for (const RatioRange& r : domain_ranges) {
    if (std::isinf(r.hi)) {
      return Status::InvalidArgument(
          "index domain must be bounded; use one-shot algorithms for "
          "unbounded ranges");
    }
  }
  ECLIPSE_ASSIGN_OR_RETURN(RatioBox domain, RatioBox::Make(domain_ranges));
  ECLIPSE_ASSIGN_OR_RETURN(Box dual_domain, domain.DualQueryBox());
  if (dual_domain.degenerate()) {
    return Status::InvalidArgument("index domain must not be degenerate");
  }

  // Candidate set: skyline, then pruned to the domain-box eclipse set.
  // Both stages run the fused flat-matrix SIMD path: ComputeSkyline routes
  // the build-time filter through the zero-copy kernels over the dataset's
  // own row-major storage (upgrading to the parallel partition/merge
  // skyline for large builds), and EclipseCornerSkyline feeds its corner
  // embedding straight into the same kernels with no intermediate PointSet.
  ECLIPSE_ASSIGN_OR_RETURN(
      std::vector<PointId> skyline_ids,
      ComputeSkyline(points, options.skyline_algorithm));
  PointSet skyline_points = points.Select(skyline_ids);
  EclipseOptions prune_options;
  ECLIPSE_ASSIGN_OR_RETURN(
      std::vector<PointId> pruned_local,
      EclipseCornerSkyline(skyline_points, domain, prune_options));
  std::vector<PointId> candidates;
  candidates.reserve(pruned_local.size());
  for (PointId local : pruned_local) {
    candidates.push_back(skyline_ids[local]);
  }

  ECLIPSE_ASSIGN_OR_RETURN(DualModel model,
                           DualModel::Build(points, std::move(candidates)));
  out.model_ = std::make_unique<DualModel>(std::move(model));
  ECLIPSE_ASSIGN_OR_RETURN(
      PairTable pairs,
      PairTable::Build(*out.model_, dual_domain, options.max_pairs));
  out.pairs_ = std::make_unique<PairTable>(std::move(pairs));
  out.domain_ = std::make_unique<RatioBox>(std::move(domain));
  out.dual_domain_ = std::make_unique<Box>(std::move(dual_domain));
  ECLIPSE_RETURN_IF_ERROR(out.BuildStructures(options));
  return out;
}

Result<EclipseIndex> EclipseIndex::FromParts(IndexKind kind, RatioBox domain,
                                             DualModel model, PairTable pairs,
                                             const IndexBuildOptions& options) {
  if (domain.num_ratios() != model.dual_dims() ||
      pairs.dual_dims() != model.dual_dims()) {
    return Status::InvalidArgument("FromParts: dimensionality mismatch");
  }
  EclipseIndex out;
  out.dims_ = model.dual_dims() + 1;
  out.kind_ = kind;
  ECLIPSE_ASSIGN_OR_RETURN(Box dual_domain, domain.DualQueryBox());
  out.model_ = std::make_unique<DualModel>(std::move(model));
  out.pairs_ = std::make_unique<PairTable>(std::move(pairs));
  out.domain_ = std::make_unique<RatioBox>(std::move(domain));
  out.dual_domain_ = std::make_unique<Box>(std::move(dual_domain));
  IndexBuildOptions effective = options;
  effective.kind = kind;
  ECLIPSE_RETURN_IF_ERROR(out.BuildStructures(effective));
  return out;
}

Status EclipseIndex::BuildStructures(const IndexBuildOptions& options) {
  const size_t k = dims_ - 1;
  if (k == 1) {
    // Both index kinds share the sorted binary-search structure in 2D.
    ECLIPSE_ASSIGN_OR_RETURN(Index2D index2d, Index2D::Build(*pairs_));
    index_ = std::make_unique<Index2D>(std::move(index2d));
    if (options.build_order_vector_index) {
      ECLIPSE_ASSIGN_OR_RETURN(
          OrderVectorIndex2D ovi,
          OrderVectorIndex2D::Build(
              *model_, *pairs_, *static_cast<const Index2D*>(index_.get()),
              dual_domain_->side(0), options.order_vector_options));
      order_vector_index_ =
          std::make_unique<OrderVectorIndex2D>(std::move(ovi));
    }
    return Status::OK();
  }
  if (options.build_order_vector_index) {
    return Status::InvalidArgument(
        "the faithful Order Vector Index is 2D-only");
  }
  IndexKind kind = options.kind == IndexKind::kAuto ? IndexKind::kLineQuadtree
                                                    : options.kind;
  if (kind == IndexKind::kLineQuadtree) {
    ECLIPSE_ASSIGN_OR_RETURN(
        LineQuadtree tree,
        LineQuadtree::Build(*pairs_, *dual_domain_, options.quadtree));
    index_ = std::make_unique<LineQuadtree>(std::move(tree));
  } else {
    ECLIPSE_ASSIGN_OR_RETURN(
        CuttingTree tree,
        CuttingTree::Build(*pairs_, *dual_domain_, options.cutting));
    index_ = std::make_unique<CuttingTree>(std::move(tree));
  }
  return Status::OK();
}

Status EclipseIndex::ValidateQuery(const RatioBox& box) const {
  if (box.dims() != dims_) {
    return Status::InvalidArgument(
        StrFormat("query has %zu ranges, expected d-1 = %zu", box.num_ratios(),
                  dims_ - 1));
  }
  if (box.AnyUnbounded()) {
    return Status::InvalidArgument(
        "index queries require bounded ranges; use one-shot algorithms for "
        "skyline-style queries");
  }
  for (size_t j = 0; j < box.num_ratios(); ++j) {
    const RatioRange& q = box.range(j);
    const RatioRange& d = domain_->range(j);
    if (q.lo < d.lo || q.hi > d.hi) {
      return Status::OutOfRange(StrFormat(
          "query ratio %zu in [%g, %g] outside index domain [%g, %g]; "
          "rebuild the index with a wider domain",
          j, q.lo, q.hi, d.lo, d.hi));
    }
  }
  return Status::OK();
}

Result<std::vector<PointId>> EclipseIndex::Query(const RatioBox& box,
                                                 QueryStats* stats) const {
  ECLIPSE_RETURN_IF_ERROR(ValidateQuery(box));
  const size_t u = model_->u();
  std::vector<PointId> result;
  if (u == 0) return result;
  ECLIPSE_ASSIGN_OR_RETURN(Box query, box.DualQueryBox());

  Statistics local_counters;
  Statistics* counters = stats != nullptr ? &stats->counters : &local_counters;

  // Order Vector at the query corner.
  ECLIPSE_ASSIGN_OR_RETURN(CornerOrder order,
                           ComputeCornerOrder(*model_, query));
  std::vector<uint32_t> ov = order.ranks;

  // Candidate crossings from the Intersection Index.
  std::vector<uint32_t> candidates;
  index_->CollectCandidates(query, &candidates, counters);
  const size_t raw_candidates = candidates.size();
  if (raw_candidates <= 64) {
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());
  } else {
    // Linear-time dedup: wide queries can collect a pair from many leaves.
    std::vector<uint8_t> seen(pairs_->size(), 0);
    size_t kept = 0;
    for (uint32_t pair : candidates) {
      if (!seen[pair]) {
        seen[pair] = 1;
        candidates[kept++] = pair;
      }
    }
    candidates.resize(kept);
  }
  counters->Add(Ticker::kPairsDeduplicated, raw_candidates - candidates.size());

  // Verify exactly; each interior crossing clears one potential dominator.
  size_t verified = 0;
  for (uint32_t pair : candidates) {
    if (!pairs_->CrossesInterior(pair, query)) continue;
    ++verified;
    const uint32_t a = pairs_->a(pair);
    const uint32_t b = pairs_->b(pair);
    // Initial ranks are immutable: the lower line at the query corner is
    // the one that loses a dominator (DESIGN.md finding F2).
    if (order.ranks[a] < order.ranks[b]) {
      --ov[b];
    } else {
      --ov[a];
    }
  }
  counters->Add(Ticker::kVerifiedCrossings, verified);

  for (uint32_t i = 0; i < u; ++i) {
    if (ov[i] == 0) result.push_back(model_->original_id(i));
  }
  std::sort(result.begin(), result.end());
  if (stats != nullptr) {
    stats->indexed = u;
    stats->candidates = raw_candidates;
    stats->verified_crossings = verified;
    stats->result_size = result.size();
  }
  return result;
}

Result<std::vector<std::vector<PointId>>> EclipseIndex::QueryBatch(
    const std::vector<RatioBox>& boxes, size_t num_threads) const {
  for (size_t q = 0; q < boxes.size(); ++q) {
    Status status = ValidateQuery(boxes[q]);
    if (!status.ok()) {
      return Status(status.code(),
                    StrFormat("query %zu: %s", q, status.message().c_str()));
    }
  }
  // Queries are read-only over the immutable index; fan them out as chunks
  // on the shared pool instead of spawning per-call threads. The first
  // failing query's status wins (all boxes were validated above, so this
  // only trips on internal errors).
  std::vector<std::vector<PointId>> results(boxes.size());
  std::mutex error_mu;
  Status first_error = Status::OK();
  auto worker = [&](size_t begin, size_t end) {
    for (size_t q = begin; q < end; ++q) {
      auto r = Query(boxes[q], nullptr);
      if (!r.ok()) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (first_error.ok()) first_error = r.status();
        return;
      }
      results[q] = std::move(r).value();
    }
  };
  ThreadPool::Shared().ParallelFor(0, boxes.size(), /*grain=*/1, worker,
                                   num_threads);
  ECLIPSE_RETURN_IF_ERROR(first_error);
  return results;
}

Result<std::vector<PointId>> EclipseIndex::QueryFaithfulSweep(
    const RatioBox& box, QueryStats* stats) const {
  if (order_vector_index_ == nullptr) {
    return Status::InvalidArgument(
        "QueryFaithfulSweep requires build_order_vector_index (d == 2)");
  }
  ECLIPSE_RETURN_IF_ERROR(ValidateQuery(box));
  std::vector<PointId> result;
  if (model_->u() == 0) return result;
  const RatioRange& r = box.range(0);
  std::vector<uint32_t> locals =
      order_vector_index_->QueryFaithful(-r.hi, -r.lo);
  for (uint32_t i : locals) {
    result.push_back(model_->original_id(i));
  }
  std::sort(result.begin(), result.end());
  if (stats != nullptr) {
    stats->indexed = model_->u();
    stats->result_size = result.size();
  }
  return result;
}

size_t EclipseIndex::MemoryFootprintBytes() const {
  size_t bytes = 0;
  if (model_ != nullptr) {
    bytes += model_->original_ids().size() * sizeof(PointId) +
             (model_->raw_coeffs().size() + model_->raw_constants().size()) *
                 sizeof(double);
  }
  if (pairs_ != nullptr) {
    bytes += (pairs_->raw_a().size() + pairs_->raw_b().size()) *
                 sizeof(uint32_t) +
             (pairs_->raw_coeffs().size() + pairs_->raw_constants().size()) *
                 sizeof(double);
  }
  if (index_ != nullptr) bytes += index_->MemoryFootprintBytes();
  if (order_vector_index_ != nullptr) {
    bytes += order_vector_index_->MemoryFootprintBytes();
  }
  return bytes;
}

}  // namespace eclipse
