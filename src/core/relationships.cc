#include "core/relationships.h"

#include <algorithm>

#include "core/eclipse.h"
#include "hull/convex_hull_2d.h"
#include "knn/scoring.h"

namespace eclipse {

Result<OperatorComparison> CompareOperators(const PointSet& points,
                                            const RatioBox& box) {
  OperatorComparison out;

  std::vector<double> center_ratios;
  center_ratios.reserve(box.num_ratios());
  for (size_t j = 0; j < box.num_ratios(); ++j) {
    const RatioRange& r = box.range(j);
    center_ratios.push_back(r.unbounded() ? r.lo : 0.5 * (r.lo + r.hi));
  }
  const Point w = WeightsFromRatios(center_ratios);
  ECLIPSE_ASSIGN_OR_RETURN(out.one_nn, OneNearestNeighbors(points, w));

  ECLIPSE_ASSIGN_OR_RETURN(out.eclipse, EclipseCornerSkyline(points, box));

  const RatioBox skyline_box = RatioBox::Skyline(box.num_ratios());
  ECLIPSE_ASSIGN_OR_RETURN(out.skyline,
                           EclipseCornerSkyline(points, skyline_box));

  if (points.dims() == 2) {
    ECLIPSE_ASSIGN_OR_RETURN(out.hull, ConvexHullQuery2D(points));
  }
  return out;
}

bool IsSubset(const std::vector<PointId>& inner,
              const std::vector<PointId>& outer) {
  std::vector<PointId> a = inner;
  std::vector<PointId> b = outer;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

}  // namespace eclipse
