// EclipseIndex persistence.
//
// Saves the expensive build artifacts -- the pruned candidate dual model and
// the pairwise intersection table -- plus the query domain and index kind.
// The intersection tree itself is cheap and is rebuilt deterministically at
// load time from the options passed to LoadEclipseIndex (tree tuning knobs
// are not part of the file format).

#ifndef ECLIPSE_CORE_INDEX_IO_H_
#define ECLIPSE_CORE_INDEX_IO_H_

#include <string>

#include "core/eclipse_index.h"

namespace eclipse {

/// File format version written by SaveEclipseIndex.
inline constexpr uint32_t kIndexFormatVersion = 1;

Status SaveEclipseIndex(const EclipseIndex& index, const std::string& path);

/// Loads an index saved by SaveEclipseIndex. `options` supplies the tree
/// tuning knobs (kind is taken from the file; options.kind is ignored).
Result<EclipseIndex> LoadEclipseIndex(const std::string& path,
                                      const IndexBuildOptions& options = {});

}  // namespace eclipse

#endif  // ECLIPSE_CORE_INDEX_IO_H_
