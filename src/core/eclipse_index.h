// EclipseIndex: the paper's index-based query engines (QUAD / CUTTING).
//
// Build once, answer many eclipse queries in O(u + m) after candidate
// retrieval (u = indexed hyperplanes, m = crossings in range):
//
//   build:  skyline filter  ->  domain-eclipse prune  ->  dual hyperplanes
//           -> pairwise intersection table -> Intersection Index
//   query:  corner order (Order Vector) -> candidate crossings from the
//           index -> exact verification -> per-crossing decrement ->
//           report rank 0
//
// The engine answers any query whose ratio box lies inside the index's
// *query domain* (a build option, default [0, 100] per ratio); queries
// outside it return InvalidArgument rather than a silently wrong answer --
// use the one-shot algorithms in core/eclipse.h for unbounded ranges.
//
// The domain-eclipse prune is sound because eclipse dominance over a
// superset box implies dominance over any subset box: a point dominated
// w.r.t. the whole domain can never appear in an answer, and by transitivity
// its dominators that survive pruning still witness every elimination.

#ifndef ECLIPSE_CORE_ECLIPSE_INDEX_H_
#define ECLIPSE_CORE_ECLIPSE_INDEX_H_

#include <memory>

#include "core/eclipse.h"
#include "core/ratio_box.h"
#include "dual/dual_model.h"
#include "dual/intersections.h"
#include "index/cutting_tree.h"
#include "index/index2d.h"
#include "index/line_quadtree.h"
#include "index/order_vector_index2d.h"

namespace eclipse {

enum class IndexKind {
  /// Sorted abscissas for d == 2, line quadtree otherwise.
  kAuto,
  /// QUAD: midpoint 2^(d-1)-tree. For d == 2 this (like the paper) uses the
  /// shared sorted binary-search structure.
  kLineQuadtree,
  /// CUTTING: sample-median cutting. Shares the 2D structure likewise.
  kCuttingTree,
};

const char* IndexKindName(IndexKind kind);

/// The query domain used per ratio dimension when IndexBuildOptions::domain
/// is left empty (also consulted by EclipseEngine's routing).
inline constexpr RatioRange kDefaultIndexDomainRange{0.0, 100.0};

struct IndexBuildOptions {
  IndexKind kind = IndexKind::kAuto;
  /// Query domain per ratio dimension; empty means [0, 100] for each.
  std::vector<RatioRange> domain;
  /// Skyline backend for the build-time filter.
  SkylineAlgorithm skyline_algorithm = SkylineAlgorithm::kAuto;
  LineQuadtreeOptions quadtree;
  CuttingTreeOptions cutting;
  /// Build fails (ResourceExhausted) beyond this many intersecting pairs.
  size_t max_pairs = 5'000'000;
  /// Also build the paper-faithful 2D Order Vector Index (d == 2 only),
  /// enabling QueryFaithfulSweep.
  bool build_order_vector_index = false;
  OrderVectorIndex2D::Options order_vector_options;
};

/// Per-query observability (RocksDB-statistics style).
struct QueryStats {
  size_t indexed = 0;             // u
  size_t candidates = 0;          // pairs retrieved (before dedup/verify)
  size_t verified_crossings = 0;  // m
  size_t result_size = 0;
  Statistics counters;
};

class EclipseIndex {
 public:
  static Result<EclipseIndex> Build(const PointSet& points,
                                    const IndexBuildOptions& options = {});

  /// Reassembles an index from prebuilt parts (used by index persistence:
  /// the model and pair table are the expensive artifacts; the intersection
  /// structure is rebuilt deterministically from `options`). `domain` must
  /// be the domain the pair table was built against.
  static Result<EclipseIndex> FromParts(IndexKind kind, RatioBox domain,
                                        DualModel model, PairTable pairs,
                                        const IndexBuildOptions& options = {});

  /// Answers an eclipse query; `box` must be bounded and inside the domain.
  Result<std::vector<PointId>> Query(const RatioBox& box,
                                     QueryStats* stats = nullptr) const;

  /// Answers many queries over the immutable index, sharded across worker
  /// threads (queries are read-only and independent). All boxes are
  /// validated up front; results arrive in input order. num_threads == 0
  /// picks the hardware count.
  Result<std::vector<std::vector<PointId>>> QueryBatch(
      const std::vector<RatioBox>& boxes, size_t num_threads = 0) const;

  /// Paper Algorithm 5 (2D only, requires build_order_vector_index).
  Result<std::vector<PointId>> QueryFaithfulSweep(const RatioBox& box,
                                                  QueryStats* stats) const;

  size_t indexed_count() const { return model_->u(); }
  size_t pair_count() const { return pairs_->size(); }
  const std::vector<PointId>& candidate_ids() const {
    return model_->original_ids();
  }
  const RatioBox& domain() const { return *domain_; }
  const IntersectionIndexBase* intersection_index() const {
    return index_.get();
  }
  IndexKind kind() const { return kind_; }
  /// Internal artifacts, exposed for persistence and diagnostics.
  const DualModel& model() const { return *model_; }
  const PairTable& pairs() const { return *pairs_; }

  /// Bytes held by the dual model, pair table, intersection structure, and
  /// (when built) the Order Vector Index. Counts bulk data arrays by element
  /// -- see DESIGN.md "Memory accounting".
  size_t MemoryFootprintBytes() const;

  EclipseIndex(EclipseIndex&&) = default;
  EclipseIndex& operator=(EclipseIndex&&) = default;

 private:
  EclipseIndex() = default;

  Status ValidateQuery(const RatioBox& box) const;
  /// Builds index_ (and optionally the Order Vector Index) from pairs_,
  /// model_, and dual_domain_.
  Status BuildStructures(const IndexBuildOptions& options);

  size_t dims_ = 0;
  IndexKind kind_ = IndexKind::kAuto;
  std::unique_ptr<RatioBox> domain_;
  std::unique_ptr<Box> dual_domain_;
  std::unique_ptr<DualModel> model_;
  std::unique_ptr<PairTable> pairs_;
  std::unique_ptr<IntersectionIndexBase> index_;
  std::unique_ptr<OrderVectorIndex2D> order_vector_index_;
};

}  // namespace eclipse

#endif  // ECLIPSE_CORE_ECLIPSE_INDEX_H_
