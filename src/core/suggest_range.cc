#include "core/suggest_range.h"

#include <cmath>

#include "common/strings.h"
#include "core/eclipse.h"

namespace eclipse {

namespace {

Result<RatioBox> BoxForGamma(const std::vector<double>& center, double gamma) {
  std::vector<RatioRange> ranges;
  ranges.reserve(center.size());
  for (double r : center) {
    ranges.push_back(RatioRange{r / gamma, r * gamma});
  }
  return RatioBox::Make(std::move(ranges));
}

}  // namespace

Result<SuggestedRange> SuggestRange(const PointSet& points,
                                    const std::vector<double>& center_ratios,
                                    size_t target_size,
                                    const SuggestRangeOptions& options) {
  if (center_ratios.size() + 1 != points.dims()) {
    return Status::InvalidArgument(
        StrFormat("need %zu center ratios for d = %zu data",
                  points.dims() - 1, points.dims()));
  }
  for (double r : center_ratios) {
    if (!(r > 0.0) || std::isinf(r)) {
      return Status::InvalidArgument(
          "center ratios must be strictly positive and finite");
    }
  }
  if (target_size == 0) {
    return Status::InvalidArgument("target size must be positive");
  }

  auto count_at = [&](double gamma) -> Result<size_t> {
    ECLIPSE_ASSIGN_OR_RETURN(RatioBox box, BoxForGamma(center_ratios, gamma));
    ECLIPSE_ASSIGN_OR_RETURN(std::vector<PointId> ids,
                             EclipseCornerSkyline(points, box));
    return ids.size();
  };

  // If even the widest margin cannot reach the target, return it.
  ECLIPSE_ASSIGN_OR_RETURN(size_t widest, count_at(options.max_gamma));
  if (widest < target_size) {
    ECLIPSE_ASSIGN_OR_RETURN(RatioBox box,
                             BoxForGamma(center_ratios, options.max_gamma));
    return SuggestedRange{std::move(box), options.max_gamma, widest};
  }

  // Binary search on log(gamma): the count is a nondecreasing step function
  // of gamma, find the smallest gamma reaching the target.
  double lo = 1.0;
  double hi = options.max_gamma;
  ECLIPSE_ASSIGN_OR_RETURN(size_t lo_count, count_at(lo));
  if (lo_count >= target_size) {
    ECLIPSE_ASSIGN_OR_RETURN(RatioBox box, BoxForGamma(center_ratios, lo));
    return SuggestedRange{std::move(box), lo, lo_count};
  }
  for (size_t step = 0; step < options.binary_search_steps; ++step) {
    const double mid = std::sqrt(lo * hi);
    ECLIPSE_ASSIGN_OR_RETURN(size_t mid_count, count_at(mid));
    if (mid_count >= target_size) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  ECLIPSE_ASSIGN_OR_RETURN(size_t hi_count, count_at(hi));
  ECLIPSE_ASSIGN_OR_RETURN(RatioBox box, BoxForGamma(center_ratios, hi));
  return SuggestedRange{std::move(box), hi, hi_count};
}

}  // namespace eclipse
