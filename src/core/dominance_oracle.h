// Exact pairwise eclipse-dominance via corner weight vectors.
//
// p eclipse-dominates q iff S(p)_r <= S(q)_r for every ratio vector r in the
// box and strictly for at least one r. Because the score difference is
// affine in r, it suffices to check the box corners (paper Theorems 1-2);
// unbounded ratio dimensions additionally require p[j] <= q[j] (the
// coefficient of an unbounded direction must be nonpositive). Strictness is
// automatic unless the difference vanishes identically on the box, which the
// same corner evaluations detect.
//
// The score computation itself lives in core/corner_kernel.h -- this class
// is the pairwise-comparison view of that kernel, kept as the simple oracle
// used by NaiveEclipse and the tests.

#ifndef ECLIPSE_CORE_DOMINANCE_ORACLE_H_
#define ECLIPSE_CORE_DOMINANCE_ORACLE_H_

#include <span>
#include <vector>

#include "core/corner_kernel.h"
#include "core/ratio_box.h"
#include "geometry/point.h"

namespace eclipse {

class DominanceOracle {
 public:
  /// The box's dims() must match the dimensionality of points passed later.
  explicit DominanceOracle(const RatioBox& box) : kernel_(box) {}

  /// Weighted sum of p under weight vector w (both length d).
  static double Score(std::span<const double> p, std::span<const double> w) {
    return CornerKernel::Score(p, w);
  }

  /// True iff p eclipse-dominates q over the box.
  bool Dominates(std::span<const double> p, std::span<const double> q) const {
    return kernel_.Dominates(p, q);
  }

  /// The exact vector embedding: v(p) = (corner scores..., p[j] for each
  /// unbounded ratio dim j). p dominates q iff v(p) <= v(q) componentwise
  /// with v(p) != v(q); hence eclipse(P) = min-skyline of the embeddings.
  Point Embed(std::span<const double> p) const { return kernel_.Embed(p); }
  size_t EmbeddingDims() const { return kernel_.embedding_dims(); }

  const std::vector<Point>& corners() const { return kernel_.corners(); }
  const CornerKernel& kernel() const { return kernel_; }

 private:
  CornerKernel kernel_;
};

}  // namespace eclipse

#endif  // ECLIPSE_CORE_DOMINANCE_ORACLE_H_
