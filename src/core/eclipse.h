// Umbrella header for the eclipse operator's one-shot algorithms.
//
// All entry points take the dataset (smaller-is-better attributes) and a
// RatioBox, and return the ids of the eclipse points sorted ascending.
//
//   * EclipseBaseline      -- BASE,   exact, O(n^2 2^(d-1)).
//   * EclipseTransform2D   -- TRAN,   exact, O(n log n), d == 2 only.
//   * EclipseTransformHD   -- TRAN,   paper-faithful Algorithm 3. Exact for
//                             d == 2; for d >= 3 it may under-report (see
//                             DESIGN.md finding F1) -- kept for comparison.
//   * EclipseCornerSkyline -- exact for every d: skyline of the corner-score
//                             embedding (the corrected transformation).
//
// The index-based QUAD / CUTTING engines live in core/eclipse_index.h.

#ifndef ECLIPSE_CORE_ECLIPSE_H_
#define ECLIPSE_CORE_ECLIPSE_H_

#include <vector>

#include "common/query_context.h"
#include "common/result.h"
#include "common/statistics.h"
#include "core/ratio_box.h"
#include "geometry/point.h"
#include "skyline/skyline.h"

namespace eclipse {

/// Options shared by the one-shot algorithms.
struct EclipseOptions {
  /// Skyline backend used by the transformation-based algorithms.
  SkylineAlgorithm skyline_algorithm = SkylineAlgorithm::kAuto;
  /// Guard against exponential corner blow-up in very high dimensions.
  size_t max_corner_dims = 20;
  /// Borrowed per-query deadline/cancellation; null = no limits. The
  /// context-aware algorithms (EclipseCornerSkyline, the BBS path, the
  /// cross-shard merge) poll it inside their long loops and return
  /// DeadlineExceeded / Cancelled. Must outlive the call.
  const QueryContext* context = nullptr;
};

/// BASE (paper Algorithm 1): pairwise corner-score comparison, exact.
Result<std::vector<PointId>> EclipseBaseline(const PointSet& points,
                                             const RatioBox& box,
                                             Statistics* stats = nullptr);

/// BASE with the quadratic phase sharded over worker threads; identical
/// results to EclipseBaseline. num_threads == 0 picks the hardware count.
Result<std::vector<PointId>> EclipseBaselineParallel(const PointSet& points,
                                                     const RatioBox& box,
                                                     size_t num_threads = 0,
                                                     Statistics* stats =
                                                         nullptr);

/// TRAN for d == 2 (paper Algorithm 2): map p -> c via the two domination
/// line intercepts, then 2D skyline. Exact.
Result<std::vector<PointId>> EclipseTransform2D(
    const PointSet& points, const RatioBox& box,
    const EclipseOptions& options = {}, Statistics* stats = nullptr);

/// TRAN for any d (paper Algorithm 3), using the paper's d chosen domination
/// vectors. Exact for d == 2; a (fast) under-approximation for d >= 3.
Result<std::vector<PointId>> EclipseTransformHD(
    const PointSet& points, const RatioBox& box,
    const EclipseOptions& options = {}, Statistics* stats = nullptr);

/// Exact transformation for any d: skyline of the full 2^(d-1)-corner score
/// embedding (plus coordinatewise conditions for unbounded ranges). Fused:
/// the embedding matrix feeds the flat-matrix SIMD skyline directly with no
/// intermediate PointSet (skyline/flat_skyline.h).
Result<std::vector<PointId>> EclipseCornerSkyline(
    const PointSet& points, const RatioBox& box,
    const EclipseOptions& options = {}, Statistics* stats = nullptr);

/// The skyline path EclipseCornerSkyline takes for these options at input
/// size n ("flat-sfs", "flat-parallel-merge", ...). Single source of truth
/// consumed by EclipseEngine::Explain.
const char* CornerSkylinePath(const EclipseOptions& options, size_t n);

/// The paper's TRAN c-mapping as a PointSet (exposed for tests and the
/// worked examples): row i is the image c_i of point i.
Result<PointSet> TransformToCSpace(const PointSet& points,
                                   const RatioBox& box);

/// O(n^2) oracle built directly on DominanceOracle; used by tests as ground
/// truth (identical to EclipseBaseline but kept independent and simple).
Result<std::vector<PointId>> NaiveEclipse(const PointSet& points,
                                          const RatioBox& box);

}  // namespace eclipse

#endif  // ECLIPSE_CORE_ECLIPSE_H_
