// Exact transformation at any dimensionality (the corrected TRAN).
//
// Embed every point as its vector of 2^(d-1) corner scores (plus raw
// coordinates for unbounded ratio dims) via the shared CornerKernel; by
// Theorem 2, eclipse dominance is exactly componentwise dominance of the
// embeddings, so the eclipse set is the skyline of the embedded set.
//
// This is THE hot path of every CORNER query, so the two stages are fused:
// EmbedAll's flat n x m score matrix feeds the flat-matrix skyline kernels
// (skyline/flat_skyline.h) directly -- no intermediate PointSet, no copy --
// with the dominance inner loops running on the dispatching SIMD kernel.
// Large inputs embed in parallel and take the partition/tournament-merge
// skyline on the shared pool; both stages are decision-identical to the
// scalar single-thread path, so the result ids never depend on the route.
// Only the PointSet-shaped algorithms (kSortSweep2D, kDivideConquer) still
// materialize the embedding, via a move -- not a copy -- of the matrix.

#include "common/strings.h"
#include "common/thread_pool.h"
#include "telemetry/trace.h"
#include "core/corner_kernel.h"
#include "core/eclipse.h"
#include "index/packed_rtree.h"
#include "skyline/bbs.h"
#include "skyline/flat_skyline.h"

namespace eclipse {

namespace {

/// Embeddings with at least this many rows run EmbedAllParallel on the
/// shared pool; below it single-thread constants win. (The skyline stage
/// has its own, lower fan-out threshold in ChooseFlatSkylinePath.)
constexpr size_t kParallelEmbedMinRows = 1 << 15;

}  // namespace

const char* CornerSkylinePath(const EclipseOptions& options, size_t n) {
  const SkylineAlgorithm algo = options.skyline_algorithm;
  if (algo == SkylineAlgorithm::kBbs) return "bbs";
  if (FlatCapable(algo)) {
    // CORNER feeds the embedding to the flat kernels even when it is
    // 2-dimensional, so kAuto resolves without ComputeSkylinePathName's
    // 2D sort-sweep special case.
    return FlatSkylinePathName(ChooseFlatSkylinePath(algo, n));
  }
  // kSortSweep2D / kDivideConquer name themselves; dims only affects
  // kAuto, which is flat-capable.
  return ComputeSkylinePathName(algo, n, /*dims=*/0);
}

Result<std::vector<PointId>> EclipseCornerSkyline(const PointSet& points,
                                                  const RatioBox& box,
                                                  const EclipseOptions& options,
                                                  Statistics* stats) {
  if (points.dims() < 2) {
    return Status::InvalidArgument("eclipse requires d >= 2 data");
  }
  if (box.dims() != points.dims()) {
    return Status::InvalidArgument(
        StrFormat("ratio box has %zu ranges, expected d-1 = %zu",
                  box.num_ratios(), points.dims() - 1));
  }
  if (box.FreeDims().size() > options.max_corner_dims) {
    return Status::ResourceExhausted(
        StrFormat("corner embedding would need 2^%zu dims (max 2^%zu)",
                  box.FreeDims().size(), options.max_corner_dims));
  }
  const size_t n = points.size();
  const QueryContext* ctx = options.context;
  ECLIPSE_RETURN_IF_ERROR(CheckQueryContext(ctx));
  if (n == 0) return std::vector<PointId>{};

  if (options.skyline_algorithm == SkylineAlgorithm::kBbs) {
    // Output-sensitive path: skip materializing the n x m score matrix
    // entirely -- build a throwaway raw-space tree and let BBS embed only
    // the node corners and points it actually visits. EclipseEngine's warm
    // path calls BbsEclipse directly with its cached per-epoch tree.
    TraceSpan bbs_span(TraceOf(ctx), "bbs.query");
    ECLIPSE_ASSIGN_OR_RETURN(PackedRTree tree, PackedRTree::Build(points));
    return BbsEclipse(points, tree, box, options.max_corner_dims,
                      /*constraint=*/nullptr, stats, /*bbs=*/nullptr,
                      /*tombstones=*/{}, ctx);
  }

  CornerKernel kernel(box);
  const size_t m = kernel.embedding_dims();
  const bool parallel_embed =
      n >= kParallelEmbedMinRows && ThreadPool::Shared().size() >= 2;
  std::vector<double> scores;
  {
    TraceSpan embed_span(TraceOf(ctx), "embed");
    embed_span.SetAttr("rows", uint64_t(n));
    embed_span.SetAttr("corner_dims", uint64_t(m));
    scores = parallel_embed ? kernel.EmbedAllParallel(points, 0, stats)
                            : kernel.EmbedAll(points, stats);
  }

  const SkylineAlgorithm algo = options.skyline_algorithm;
  if (!FlatCapable(algo)) {
    // kSortSweep2D / kDivideConquer operate on a PointSet; the matrix is
    // moved into it, not copied.
    ECLIPSE_ASSIGN_OR_RETURN(PointSet embedded,
                             PointSet::FromFlat(m, std::move(scores)));
    return ComputeSkyline(embedded, algo, stats);
  }
  const FlatMatrixView view = FlatMatrixView::Of(scores, m);
  TraceSpan skyline_span(TraceOf(ctx), "skyline.kernel");
  skyline_span.SetAttr("path",
                       FlatSkylinePathName(ChooseFlatSkylinePath(algo, n)));
  std::vector<PointId> ids =
      FlatSkyline(view, ChooseFlatSkylinePath(algo, n), stats, ctx);
  // The flat kernels bail out with a PARTIAL id set on expiry; surface the
  // error instead of the truncated answer. (A query that finished right at
  // the deadline also reports DeadlineExceeded -- acceptable, never wrong.)
  ECLIPSE_RETURN_IF_ERROR(CheckQueryContext(ctx));
  return ids;
}

}  // namespace eclipse
