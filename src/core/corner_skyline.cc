// Exact transformation at any dimensionality (the corrected TRAN).
//
// Embed every point as its vector of 2^(d-1) corner scores (plus raw
// coordinates for unbounded ratio dims) via the shared CornerKernel; by
// Theorem 2, eclipse dominance is exactly componentwise dominance of the
// embeddings, so the eclipse set is the skyline of the embedded set. The
// embedded skyline is small (it *is* the eclipse result), which makes SFS
// effectively linear here.

#include "common/strings.h"
#include "core/corner_kernel.h"
#include "core/eclipse.h"

namespace eclipse {

Result<std::vector<PointId>> EclipseCornerSkyline(const PointSet& points,
                                                  const RatioBox& box,
                                                  const EclipseOptions& options,
                                                  Statistics* stats) {
  if (points.dims() < 2) {
    return Status::InvalidArgument("eclipse requires d >= 2 data");
  }
  if (box.dims() != points.dims()) {
    return Status::InvalidArgument(
        StrFormat("ratio box has %zu ranges, expected d-1 = %zu",
                  box.num_ratios(), points.dims() - 1));
  }
  if (box.FreeDims().size() > options.max_corner_dims) {
    return Status::ResourceExhausted(
        StrFormat("corner embedding would need 2^%zu dims (max 2^%zu)",
                  box.FreeDims().size(), options.max_corner_dims));
  }
  const size_t n = points.size();
  if (n == 0) return std::vector<PointId>{};

  CornerKernel kernel(box);
  ECLIPSE_ASSIGN_OR_RETURN(PointSet embedded,
                           kernel.EmbedAllAsPointSet(points, stats));
  SkylineAlgorithm algo = options.skyline_algorithm;
  if (algo == SkylineAlgorithm::kAuto) algo = SkylineAlgorithm::kSfs;
  return ComputeSkyline(embedded, algo, stats);
}

}  // namespace eclipse
