// TRAN, d == 2 (paper Algorithm 2 / Theorem 4).
//
// Each point p maps to c with
//   c[0] = p[0] + p[1] / h   (the smaller x-intercept of its two domination
//                             lines; -> p[0] as h -> +inf)
//   c[1] = l * p[0] + p[1]   (the smaller y-intercept)
// and p eclipse-dominates p' iff c skyline-dominates c'. The eclipse set is
// the 2D skyline of the mapped set, computed in O(n log n).

#include <cmath>

#include "common/strings.h"
#include "core/corner_kernel.h"
#include "core/eclipse.h"

namespace eclipse {

Result<PointSet> TransformToCSpace(const PointSet& points,
                                   const RatioBox& box) {
  if (points.dims() < 2) {
    return Status::InvalidArgument("eclipse requires d >= 2 data");
  }
  if (box.dims() != points.dims()) {
    return Status::InvalidArgument(
        StrFormat("ratio box has %zu ranges, expected d-1 = %zu",
                  box.num_ratios(), points.dims() - 1));
  }
  const size_t d = points.dims();
  const size_t n = points.size();

  // The paper's d chosen corners as weight vectors: the all-lo corner and,
  // per ratio dim j, the single-flip corner with w[j] raised to h_j. Scores
  // are evaluated by the shared CornerKernel primitive; the single-flip
  // score divides by h_j to become the intercept c[j].
  Point w_all_lo(d);
  for (size_t j = 0; j + 1 < d; ++j) w_all_lo[j] = box.range(j).lo;
  w_all_lo[d - 1] = 1.0;
  std::vector<Point> w_flips(d - 1);
  for (size_t j = 0; j + 1 < d; ++j) {
    w_flips[j] = w_all_lo;
    w_flips[j][j] = box.range(j).hi;
  }

  std::vector<double> flat(n * d);
  for (size_t i = 0; i < n; ++i) {
    auto p = points[i];
    const double all_lo = CornerKernel::Score(p, w_all_lo);
    flat[i * d + (d - 1)] = all_lo;
    for (size_t j = 0; j + 1 < d; ++j) {
      const double hj = box.range(j).hi;
      double cj;
      if (std::isinf(hj)) {
        // Limit of Score(p, w_flip(j)) / h_j as h_j -> +inf.
        cj = p[j];
      } else if (hj == 0.0) {
        // Degenerate zero ratio: the flipped corner equals the all-lo one.
        cj = all_lo;
      } else {
        cj = CornerKernel::Score(p, w_flips[j]) / hj;
      }
      flat[i * d + j] = cj;
    }
  }
  return PointSet::FromFlat(d, std::move(flat));
}

Result<std::vector<PointId>> EclipseTransform2D(const PointSet& points,
                                                const RatioBox& box,
                                                const EclipseOptions& options,
                                                Statistics* stats) {
  if (points.dims() != 2) {
    return Status::InvalidArgument(StrFormat(
        "EclipseTransform2D requires d == 2, got d == %zu", points.dims()));
  }
  ECLIPSE_ASSIGN_OR_RETURN(PointSet c, TransformToCSpace(points, box));
  SkylineAlgorithm algo = options.skyline_algorithm;
  if (algo == SkylineAlgorithm::kAuto) algo = SkylineAlgorithm::kSortSweep2D;
  return ComputeSkyline(c, algo, stats);
}

}  // namespace eclipse
