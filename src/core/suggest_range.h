// Result-size elicitation (paper Section V-C): "if we compute the expected
// number of eclipse points in advance, the user can adjust the attribute
// weight ratio vector according to the desired number of eclipse points."
//
// SuggestRange searches for a symmetric multiplicative margin gamma >= 1
// around a center ratio vector so that the eclipse query [r/gamma, r*gamma]
// returns (close to) the requested number of points. Result size is
// monotone in gamma (nested boxes give nested eclipse sets), so a binary
// search applies.

#ifndef ECLIPSE_CORE_SUGGEST_RANGE_H_
#define ECLIPSE_CORE_SUGGEST_RANGE_H_

#include "common/result.h"
#include "core/ratio_box.h"
#include "geometry/point.h"

namespace eclipse {

struct SuggestedRange {
  RatioBox box;          // the suggested query
  double gamma = 1.0;    // the margin used
  size_t result_size = 0;  // eclipse count at that margin
};

struct SuggestRangeOptions {
  double max_gamma = 1024.0;
  size_t binary_search_steps = 40;
};

/// Finds the smallest margin whose eclipse count reaches `target_size` (or
/// the widest allowed margin if the target is unreachable). `center_ratios`
/// must be strictly positive, one per non-reference dimension.
Result<SuggestedRange> SuggestRange(const PointSet& points,
                                    const std::vector<double>& center_ratios,
                                    size_t target_size,
                                    const SuggestRangeOptions& options = {});

}  // namespace eclipse

#endif  // ECLIPSE_CORE_SUGGEST_RANGE_H_
