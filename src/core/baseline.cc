// BASE (paper Algorithm 1): for each pair of points, compare the weighted
// sums at the 2^(d-1) corner weight vectors. Corner scores are materialized
// once via the shared CornerKernel (n x m), then the quadratic pass runs
// with early exit on the first dominator found. The pairwise dominance test
// is the dispatching SIMD kernel (skyline/simd_dominance.h), which makes
// decision-identical accept/reject calls to the scalar predicate.

#include <thread>

#include "common/strings.h"
#include "common/thread_pool.h"
#include "core/corner_kernel.h"
#include "core/dominance_oracle.h"
#include "core/eclipse.h"
#include "skyline/simd_dominance.h"

namespace eclipse {

namespace {

Status CheckArgs(const PointSet& points, const RatioBox& box) {
  if (points.dims() < 2) {
    return Status::InvalidArgument("eclipse requires d >= 2 data");
  }
  if (box.dims() != points.dims()) {
    return Status::InvalidArgument(
        StrFormat("ratio box has %zu ranges, expected d-1 = %zu",
                  box.num_ratios(), points.dims() - 1));
  }
  return Status::OK();
}

}  // namespace

Result<std::vector<PointId>> EclipseBaseline(const PointSet& points,
                                             const RatioBox& box,
                                             Statistics* stats) {
  ECLIPSE_RETURN_IF_ERROR(CheckArgs(points, box));
  const size_t n = points.size();
  if (n == 0) return std::vector<PointId>{};

  CornerKernel kernel(box);
  const size_t m = kernel.embedding_dims();
  // scores[i*m .. i*m+m): corner scores + unbounded coords of point i.
  const std::vector<double> scores = kernel.EmbedAll(points, stats);

  // v(j) dominates v(i) iff componentwise <= and somewhere <. One SIMD
  // dispatch per candidate: FindDominatorRow scans the contiguous score
  // rows for the first dominator (a row never properly dominates itself,
  // so i needs no skip).
  std::vector<PointId> out;
  for (size_t i = 0; i < n; ++i) {
    const bool dominated =
        FindDominatorRow(scores.data(), n, m, scores.data() + i * m) != n;
    if (!dominated) {
      out.push_back(static_cast<PointId>(i));
    } else if (stats != nullptr) {
      stats->Add(Ticker::kPointsPruned, 1);
    }
  }
  return out;
}

Result<std::vector<PointId>> EclipseBaselineParallel(const PointSet& points,
                                                     const RatioBox& box,
                                                     size_t num_threads,
                                                     Statistics* stats) {
  ECLIPSE_RETURN_IF_ERROR(CheckArgs(points, box));
  const size_t n = points.size();
  if (n == 0) return std::vector<PointId>{};
  if (num_threads == 0) {
    num_threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  num_threads = std::min(num_threads, n);

  CornerKernel kernel(box);
  const size_t m = kernel.embedding_dims();
  const std::vector<double> scores =
      kernel.EmbedAllParallel(points, num_threads, stats);

  std::vector<uint8_t> dominated(n, 0);
  // Each chunk owns a disjoint slice of `dominated`; the quadratic pass
  // reads the shared score matrix only. Chunks run on the shared pool --
  // no per-call thread spawn.
  auto worker = [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      if (FindDominatorRow(scores.data(), n, m, scores.data() + i * m) != n) {
        dominated[i] = 1;
      }
    }
  };
  if (num_threads == 1) {
    worker(0, n);
  } else {
    ThreadPool::Shared().ParallelFor(0, n, /*grain=*/64, worker, num_threads);
  }

  std::vector<PointId> out;
  for (size_t i = 0; i < n; ++i) {
    if (!dominated[i]) out.push_back(static_cast<PointId>(i));
  }
  if (stats != nullptr) {
    stats->Add(Ticker::kPointsPruned, n - out.size());
  }
  return out;
}

Result<std::vector<PointId>> NaiveEclipse(const PointSet& points,
                                          const RatioBox& box) {
  ECLIPSE_RETURN_IF_ERROR(CheckArgs(points, box));
  DominanceOracle oracle(box);
  std::vector<PointId> out;
  for (PointId i = 0; i < points.size(); ++i) {
    bool dominated = false;
    for (PointId j = 0; j < points.size(); ++j) {
      if (i == j) continue;
      if (oracle.Dominates(points[j], points[i])) {
        dominated = true;
        break;
      }
    }
    if (!dominated) out.push_back(i);
  }
  return out;
}

}  // namespace eclipse
