// Relationship queries of the paper's Section II-C / Figure 4: 1NN, convex
// hull (origin's view), eclipse, and skyline over one dataset, plus the
// containment facts connecting them.

#ifndef ECLIPSE_CORE_RELATIONSHIPS_H_
#define ECLIPSE_CORE_RELATIONSHIPS_H_

#include <vector>

#include "common/result.h"
#include "core/ratio_box.h"
#include "geometry/point.h"

namespace eclipse {

struct OperatorComparison {
  std::vector<PointId> one_nn;   // minimizers at the box's center ratios
  std::vector<PointId> eclipse;  // for the given box
  std::vector<PointId> skyline;  // [0, +inf) instantiation
  std::vector<PointId> hull;     // convex hull query (d == 2 only, else empty)
};

/// Runs all four operators; 1NN uses the center of each ratio range
/// (midpoint, or lo when unbounded).
Result<OperatorComparison> CompareOperators(const PointSet& points,
                                            const RatioBox& box);

/// True iff `inner` is a subset of `outer` (both id lists, any order).
bool IsSubset(const std::vector<PointId>& inner,
              const std::vector<PointId>& outer);

}  // namespace eclipse

#endif  // ECLIPSE_CORE_RELATIONSHIPS_H_
