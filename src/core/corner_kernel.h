// CornerKernel: the single implementation of the corner-score embedding.
//
// Every eclipse algorithm ultimately evaluates weighted sums of each point
// at the ratio box's 2^(d-1) corner weight vectors (plus the raw coordinate
// of each unbounded ratio dimension). BASE compares the embeddings pairwise,
// CORNER takes their skyline, TRAN scales selected corner scores into
// intercepts, and the index build filter prunes against the query domain's
// embedding. This kernel owns that computation:
//
//   * Score        -- one weighted sum (the scalar primitive),
//   * Embed        -- one point -> its m-dimensional embedding,
//   * EmbedAll     -- the whole dataset -> a flat n x m score matrix,
//                     evaluated column-major: each corner weight coefficient
//                     is broadcast over a contiguous attribute column for a
//                     cache-resident block of rows. The ColumnarSnapshot
//                     overload reads the columns directly; the PointSet
//                     overload is a thin adapter that walks the row-major
//                     matrix as strided columns through the same kernel, so
//                     both layouts produce bitwise-identical matrices.
//   * EmbedAllParallel -- the same matrix with row blocks dispatched onto
//                     the shared ThreadPool (no per-call thread spawn).
//
// Embedding layout: row i is (corner scores..., p[j] for each unbounded
// ratio dim j), matching RatioBox::CornerWeightVectors() order. p
// eclipse-dominates q iff row(p) <= row(q) componentwise and row(p) !=
// row(q) (paper Theorems 1-2).

#ifndef ECLIPSE_CORE_CORNER_KERNEL_H_
#define ECLIPSE_CORE_CORNER_KERNEL_H_

#include <span>
#include <vector>

#include "common/statistics.h"
#include "core/ratio_box.h"
#include "dataset/columnar.h"
#include "geometry/point.h"

namespace eclipse {

class CornerKernel {
 public:
  /// The box's dims() must match the dimensionality of points passed later.
  explicit CornerKernel(const RatioBox& box);

  /// Weighted sum of p under weight vector w (both length d).
  static double Score(std::span<const double> p, std::span<const double> w);

  /// Embedding width m: one column per corner plus one per unbounded dim.
  size_t embedding_dims() const {
    return corners_.size() + unbounded_dims_.size();
  }
  size_t dims() const { return dims_; }
  const std::vector<Point>& corners() const { return corners_; }
  const std::vector<size_t>& unbounded_dims() const { return unbounded_dims_; }

  /// Writes the embedding of p (length dims()) into out[0 .. m).
  void EmbedInto(std::span<const double> p, double* out) const;

  /// The embedding of p as an owned Point.
  Point Embed(std::span<const double> p) const;

  /// True iff p eclipse-dominates q over the box (componentwise <= on the
  /// embeddings, strict somewhere). Evaluated corner-by-corner with early
  /// exit; no allocation.
  bool Dominates(std::span<const double> p, std::span<const double> q) const;

  /// The full n x m score matrix, row-major: row i is the embedding of
  /// row i of the snapshot. Ticks kCornerScoreEvaluations on `stats`.
  std::vector<double> EmbedAll(const ColumnarSnapshot& snapshot,
                               Statistics* stats = nullptr) const;

  /// EmbedAll over a row-major PointSet (strided-column adapter; identical
  /// output to embedding the equivalent snapshot).
  std::vector<double> EmbedAll(const PointSet& points,
                               Statistics* stats = nullptr) const;

  /// EmbedAll with row blocks run on the shared ThreadPool. num_threads
  /// caps the parallelism (0 = the whole pool). Identical output to
  /// EmbedAll.
  std::vector<double> EmbedAllParallel(const ColumnarSnapshot& snapshot,
                                       size_t num_threads = 0,
                                       Statistics* stats = nullptr) const;
  std::vector<double> EmbedAllParallel(const PointSet& points,
                                       size_t num_threads = 0,
                                       Statistics* stats = nullptr) const;

  /// The embedded set as a PointSet (the CORNER transformation's c-space).
  Result<PointSet> EmbedAllAsPointSet(const PointSet& points,
                                      Statistics* stats = nullptr) const;

 private:
  /// The core kernel: embeds rows [begin, end) into out (row-major, m
  /// columns). Column j of the dataset is cols[j][i * stride] -- stride 1
  /// for a ColumnarSnapshot, stride d for a row-major PointSet -- blocked
  /// so each corner coefficient streams over a resident block of rows.
  void EmbedColumns(std::span<const double* const> cols, size_t stride,
                    size_t begin, size_t end, double* out) const;

  /// Column base pointers for a row-major PointSet (stride dims()).
  static std::vector<const double*> StridedColumns(const PointSet& points);
  /// Column base pointers for a snapshot (stride 1).
  static std::vector<const double*> SnapshotColumns(
      const ColumnarSnapshot& snapshot);

  std::vector<double> EmbedAllImpl(std::span<const double* const> cols,
                                   size_t stride, size_t n,
                                   Statistics* stats) const;
  std::vector<double> EmbedAllParallelImpl(std::span<const double* const> cols,
                                           size_t stride, size_t n,
                                           size_t num_threads,
                                           Statistics* stats) const;

  size_t dims_ = 0;
  std::vector<Point> corners_;
  std::vector<size_t> unbounded_dims_;
};

}  // namespace eclipse

#endif  // ECLIPSE_CORE_CORNER_KERNEL_H_
