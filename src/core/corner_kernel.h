// CornerKernel: the single implementation of the corner-score embedding.
//
// Every eclipse algorithm ultimately evaluates weighted sums of each point
// at the ratio box's 2^(d-1) corner weight vectors (plus the raw coordinate
// of each unbounded ratio dimension). BASE compares the embeddings pairwise,
// CORNER takes their skyline, TRAN scales selected corner scores into
// intercepts, and the index build filter prunes against the query domain's
// embedding. This kernel owns that computation:
//
//   * Score        -- one weighted sum (the scalar primitive),
//   * Embed        -- one point -> its m-dimensional embedding,
//   * EmbedAll     -- the whole PointSet -> a flat n x m score matrix,
//                     evaluated in cache-sized blocks of rows so each corner
//                     weight vector is reused across a resident block,
//   * EmbedAllParallel -- the same matrix with rows sharded over worker
//                     threads (the EclipseBaselineParallel pattern).
//
// Embedding layout: row i is (corner scores..., p[j] for each unbounded
// ratio dim j), matching RatioBox::CornerWeightVectors() order. p
// eclipse-dominates q iff row(p) <= row(q) componentwise and row(p) !=
// row(q) (paper Theorems 1-2).

#ifndef ECLIPSE_CORE_CORNER_KERNEL_H_
#define ECLIPSE_CORE_CORNER_KERNEL_H_

#include <span>
#include <vector>

#include "common/statistics.h"
#include "core/ratio_box.h"
#include "geometry/point.h"

namespace eclipse {

class CornerKernel {
 public:
  /// The box's dims() must match the dimensionality of points passed later.
  explicit CornerKernel(const RatioBox& box);

  /// Weighted sum of p under weight vector w (both length d).
  static double Score(std::span<const double> p, std::span<const double> w);

  /// Embedding width m: one column per corner plus one per unbounded dim.
  size_t embedding_dims() const {
    return corners_.size() + unbounded_dims_.size();
  }
  size_t dims() const { return dims_; }
  const std::vector<Point>& corners() const { return corners_; }
  const std::vector<size_t>& unbounded_dims() const { return unbounded_dims_; }

  /// Writes the embedding of p (length dims()) into out[0 .. m).
  void EmbedInto(std::span<const double> p, double* out) const;

  /// The embedding of p as an owned Point.
  Point Embed(std::span<const double> p) const;

  /// True iff p eclipse-dominates q over the box (componentwise <= on the
  /// embeddings, strict somewhere). Evaluated corner-by-corner with early
  /// exit; no allocation.
  bool Dominates(std::span<const double> p, std::span<const double> q) const;

  /// The full n x m score matrix, row-major: row i is the embedding of
  /// points[i]. Ticks kCornerScoreEvaluations on `stats`.
  std::vector<double> EmbedAll(const PointSet& points,
                               Statistics* stats = nullptr) const;

  /// EmbedAll with rows sharded over `num_threads` workers (0 picks the
  /// hardware count). Identical output to EmbedAll.
  std::vector<double> EmbedAllParallel(const PointSet& points,
                                       size_t num_threads = 0,
                                       Statistics* stats = nullptr) const;

  /// The embedded set as a PointSet (the CORNER transformation's c-space).
  Result<PointSet> EmbedAllAsPointSet(const PointSet& points,
                                      Statistics* stats = nullptr) const;

 private:
  /// Embeds rows [begin, end) into the matrix starting at out (row-major,
  /// m columns), blocked for cache reuse.
  void EmbedRows(const PointSet& points, size_t begin, size_t end,
                 double* out) const;

  size_t dims_ = 0;
  std::vector<Point> corners_;
  std::vector<size_t> unbounded_dims_;
};

}  // namespace eclipse

#endif  // ECLIPSE_CORE_CORNER_KERNEL_H_
