#include "core/index_io.h"

#include <cstring>
#include <fstream>

#include "common/io.h"
#include "common/strings.h"

namespace eclipse {

namespace {

constexpr char kMagic[8] = {'E', 'C', 'L', 'I', 'D', 'X', '0', '1'};
// Sanity bound for hostile/corrupt files: no array may claim more elements
// than this.
constexpr size_t kMaxElements = size_t{1} << 33;

}  // namespace

Status SaveEclipseIndex(const EclipseIndex& index, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::NotFound(
        StrFormat("SaveEclipseIndex: cannot open %s", path.c_str()));
  }
  BinaryWriter w(&out);
  w.WriteBytes(kMagic, sizeof(kMagic));
  w.WriteU32(kIndexFormatVersion);
  w.WriteU32(static_cast<uint32_t>(index.kind()));

  // Domain.
  const RatioBox& domain = index.domain();
  w.WriteU64(domain.num_ratios());
  for (size_t j = 0; j < domain.num_ratios(); ++j) {
    w.WriteDouble(domain.range(j).lo);
    w.WriteDouble(domain.range(j).hi);
  }

  // Dual model: the candidate ids double as the id array.
  // (PointId is uint32_t; reuse the u32 array writer.)
  w.WriteU64(index.candidate_ids().size());
  w.WriteU32s(index.candidate_ids());
  // dual model arrays
  // Note: model dual_dims == num_ratios, recoverable from the domain.
  // coeffs and constants:
  // Access through the index accessors.
  // (The friend-free design: EclipseIndex exposes what persistence needs.)
  w.WriteDoubles(index.model().raw_coeffs());
  w.WriteDoubles(index.model().raw_constants());

  // Pair table.
  const PairTable& pairs = index.pairs();
  w.WriteU32s(pairs.raw_a());
  w.WriteU32s(pairs.raw_b());
  w.WriteDoubles(pairs.raw_coeffs());
  w.WriteDoubles(pairs.raw_constants());

  out.flush();
  if (!out) {
    return Status::Internal(
        StrFormat("SaveEclipseIndex: write failed for %s", path.c_str()));
  }
  return Status::OK();
}

Result<EclipseIndex> LoadEclipseIndex(const std::string& path,
                                      const IndexBuildOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound(
        StrFormat("LoadEclipseIndex: cannot open %s", path.c_str()));
  }
  BinaryReader r(&in);
  char magic[8];
  ECLIPSE_RETURN_IF_ERROR(r.ReadBytes(magic, sizeof(magic)));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument(
        StrFormat("%s is not an eclipse index file", path.c_str()));
  }
  ECLIPSE_ASSIGN_OR_RETURN(uint32_t version, r.ReadU32());
  if (version != kIndexFormatVersion) {
    return Status::InvalidArgument(
        StrFormat("unsupported index format version %u", version));
  }
  ECLIPSE_ASSIGN_OR_RETURN(uint32_t kind_raw, r.ReadU32());
  if (kind_raw > static_cast<uint32_t>(IndexKind::kCuttingTree)) {
    return Status::InvalidArgument("corrupt index kind");
  }
  const IndexKind kind = static_cast<IndexKind>(kind_raw);

  ECLIPSE_ASSIGN_OR_RETURN(uint64_t num_ratios, r.ReadU64());
  if (num_ratios == 0 || num_ratios > 64) {
    return Status::InvalidArgument("corrupt domain dimensionality");
  }
  std::vector<RatioRange> ranges(num_ratios);
  for (auto& range : ranges) {
    ECLIPSE_ASSIGN_OR_RETURN(range.lo, r.ReadDouble());
    ECLIPSE_ASSIGN_OR_RETURN(range.hi, r.ReadDouble());
  }
  ECLIPSE_ASSIGN_OR_RETURN(RatioBox domain, RatioBox::Make(std::move(ranges)));

  ECLIPSE_ASSIGN_OR_RETURN(uint64_t u, r.ReadU64());
  if (u > kMaxElements) {
    return Status::InvalidArgument("corrupt candidate count");
  }
  ECLIPSE_ASSIGN_OR_RETURN(std::vector<uint32_t> ids, r.ReadU32s(kMaxElements));
  if (ids.size() != u) {
    return Status::InvalidArgument("corrupt candidate id array");
  }
  ECLIPSE_ASSIGN_OR_RETURN(std::vector<double> coeffs,
                           r.ReadDoubles(kMaxElements));
  ECLIPSE_ASSIGN_OR_RETURN(std::vector<double> constants,
                           r.ReadDoubles(kMaxElements));
  ECLIPSE_ASSIGN_OR_RETURN(
      DualModel model,
      DualModel::FromParts(num_ratios, std::move(ids), std::move(coeffs),
                           std::move(constants)));

  ECLIPSE_ASSIGN_OR_RETURN(std::vector<uint32_t> a, r.ReadU32s(kMaxElements));
  ECLIPSE_ASSIGN_OR_RETURN(std::vector<uint32_t> b, r.ReadU32s(kMaxElements));
  ECLIPSE_ASSIGN_OR_RETURN(std::vector<double> pair_coeffs,
                           r.ReadDoubles(kMaxElements));
  ECLIPSE_ASSIGN_OR_RETURN(std::vector<double> pair_constants,
                           r.ReadDoubles(kMaxElements));
  for (uint32_t idx : a) {
    if (idx >= model.u()) {
      return Status::InvalidArgument("corrupt pair reference");
    }
  }
  for (uint32_t idx : b) {
    if (idx >= model.u()) {
      return Status::InvalidArgument("corrupt pair reference");
    }
  }
  ECLIPSE_ASSIGN_OR_RETURN(
      PairTable pairs,
      PairTable::FromParts(num_ratios, std::move(a), std::move(b),
                           std::move(pair_coeffs),
                           std::move(pair_constants)));

  return EclipseIndex::FromParts(kind, std::move(domain), std::move(model),
                                 std::move(pairs), options);
}

}  // namespace eclipse
