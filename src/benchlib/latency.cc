#include "benchlib/latency.h"

#include <algorithm>

namespace eclipse {

LatencySummary Summarize(const HistogramSnapshot& snap) {
  LatencySummary s;
  s.count = snap.count;
  s.mean_us = snap.Mean();
  s.p50_us = double(snap.P50());
  s.p95_us = double(snap.P95());
  s.p99_us = double(snap.P99());
  s.max_us = double(snap.max);
  return s;
}

HistogramSnapshot SnapshotDelta(const HistogramSnapshot& before,
                                const HistogramSnapshot& after) {
  HistogramSnapshot d;
  int top = -1;
  for (int i = 0; i < kHistogramBuckets; ++i) {
    d.buckets[i] = after.buckets[i] - before.buckets[i];
    if (d.buckets[i] != 0) top = i;
  }
  d.count = after.count - before.count;
  d.sum = after.sum - before.sum;
  d.max = top < 0 ? 0 : std::min(after.max, HistogramBucketBound(top));
  return d;
}

LatencySummary SummarizeHistogram(const MetricsRegistry& registry,
                                  const std::string& name) {
  const MetricsSnapshot snap = registry.Snapshot();
  auto it = snap.histograms.find(name);
  if (it == snap.histograms.end()) return LatencySummary{};
  return Summarize(it->second);
}

}  // namespace eclipse
