#include "benchlib/workloads.h"

#include <cassert>

#include "dataset/nba_synth.h"
#include "dataset/transforms.h"

namespace eclipse {

const char* BenchDatasetName(BenchDataset which) {
  switch (which) {
    case BenchDataset::kCorr:
      return "CORR";
    case BenchDataset::kInde:
      return "INDE";
    case BenchDataset::kAnti:
      return "ANTI";
    case BenchDataset::kNba:
      return "NBA";
  }
  return "unknown";
}

PointSet MakeBenchDataset(BenchDataset which, size_t n, size_t d,
                          uint64_t seed) {
  assert(d >= 2);
  if (which == BenchDataset::kNba) {
    assert(d <= 5);
    PointSet totals = GenerateNbaCareerTotals(
        std::max(n, kNbaDefaultPlayers), seed);
    PointSet min_space = MaxToMin(totals);
    std::vector<size_t> cols;
    for (size_t j = 0; j < d; ++j) cols.push_back(j);
    auto selected = SelectColumns(min_space, cols);
    PointSet out(d);
    for (size_t i = 0; i < n; ++i) {
      (void)out.Append((*selected)[i % selected->size()]);
    }
    return out;
  }
  Rng rng(seed);
  Distribution dist = Distribution::kIndependent;
  if (which == BenchDataset::kCorr) dist = Distribution::kCorrelated;
  if (which == BenchDataset::kAnti) dist = Distribution::kAnticorrelated;
  return GenerateSynthetic(dist, n, d, &rng);
}

}  // namespace eclipse
