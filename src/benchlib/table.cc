#include "benchlib/table.h"

#include <algorithm>

namespace eclipse {

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      line += "| ";
      line += cell;
      line.append(widths[c] - cell.size() + 1, ' ');
    }
    line += "|\n";
    return line;
  };
  std::string out = render_row(headers_);
  std::string sep;
  for (size_t c = 0; c < widths.size(); ++c) {
    sep += "|";
    sep.append(widths[c] + 2, '-');
  }
  sep += "|\n";
  out += sep;
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

}  // namespace eclipse
