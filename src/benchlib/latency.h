// Registry-backed latency reporting for the benchmark harness.
//
// Benchmarks used to collect every per-op latency into a vector and sort it
// for percentiles; with the telemetry layer the engines already record each
// query into a log2-bucketed histogram, so the harness reads the registry
// instead -- no per-op vector, no sort, and the reported numbers come from
// the exact same instrument production serving exposes.

#ifndef ECLIPSE_BENCHLIB_LATENCY_H_
#define ECLIPSE_BENCHLIB_LATENCY_H_

#include <string>

#include "telemetry/metrics_registry.h"

namespace eclipse {

/// Percentiles of one histogram, in the histogram's recorded units (µs for
/// the engine latency histograms).
struct LatencySummary {
  uint64_t count = 0;
  double mean_us = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double max_us = 0.0;
};

LatencySummary Summarize(const HistogramSnapshot& snap);

/// Bucket-wise difference `after - before` of two snapshots of the SAME
/// histogram (taken around a benchmark phase), so sweeps reusing one warm
/// engine report per-phase percentiles. The delta's max is the cumulative
/// max clamped to the delta's top occupied bucket bound -- exact when this
/// phase set the max, one bucket coarse otherwise.
HistogramSnapshot SnapshotDelta(const HistogramSnapshot& before,
                                const HistogramSnapshot& after);

/// Summary of the named histogram in `registry` ({0,...} when absent, e.g.
/// metrics disabled).
LatencySummary SummarizeHistogram(const MetricsRegistry& registry,
                                  const std::string& name);

}  // namespace eclipse

#endif  // ECLIPSE_BENCHLIB_LATENCY_H_
