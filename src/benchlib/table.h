// Aligned ASCII tables for the benchmark harness output.

#ifndef ECLIPSE_BENCHLIB_TABLE_H_
#define ECLIPSE_BENCHLIB_TABLE_H_

#include <string>
#include <vector>

namespace eclipse {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  /// Column-aligned rendering with a header separator.
  std::string ToString() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace eclipse

#endif  // ECLIPSE_BENCHLIB_TABLE_H_
