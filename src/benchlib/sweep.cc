#include "benchlib/sweep.h"

#include "common/stopwatch.h"
#include "common/strings.h"

namespace eclipse {

TimedRun TimeIt(const std::function<void()>& fn, double min_total_seconds,
                size_t max_repetitions) {
  TimedRun run;
  Stopwatch total;
  do {
    Stopwatch sw;
    fn();
    run.seconds += sw.ElapsedSeconds();
    ++run.repetitions;
  } while (total.ElapsedSeconds() < min_total_seconds &&
           run.repetitions < max_repetitions);
  run.seconds /= static_cast<double>(run.repetitions);
  return run;
}

std::string FormatSeconds(const TimedRun& run) {
  if (run.skipped) return "--";
  return StrFormat("%.3e", run.seconds);
}

}  // namespace eclipse
