// Timing helpers for the paper-table benchmark harness.

#ifndef ECLIPSE_BENCHLIB_SWEEP_H_
#define ECLIPSE_BENCHLIB_SWEEP_H_

#include <functional>
#include <string>

namespace eclipse {

struct TimedRun {
  double seconds = 0.0;   // per-invocation average
  size_t repetitions = 0;
  bool skipped = false;   // the cell was not run (over budget / unsupported)
};

/// Runs `fn` at least once; repeats until `min_total_seconds` of measurement
/// or `max_repetitions`, and reports the per-run average. Returns a skipped
/// cell if the first run exceeds `per_run_budget_seconds` going in (callers
/// pass an estimate guard via `skip`).
TimedRun TimeIt(const std::function<void()>& fn,
                double min_total_seconds = 0.05,
                size_t max_repetitions = 1000);

/// Formats seconds for a table cell ("1.23e-04 s" style used throughout).
std::string FormatSeconds(const TimedRun& run);

}  // namespace eclipse

#endif  // ECLIPSE_BENCHLIB_SWEEP_H_
