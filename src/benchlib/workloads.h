// Shared dataset wiring for the paper-figure benchmarks.

#ifndef ECLIPSE_BENCHLIB_WORKLOADS_H_
#define ECLIPSE_BENCHLIB_WORKLOADS_H_

#include <string>

#include "dataset/generators.h"
#include "geometry/point.h"

namespace eclipse {

enum class BenchDataset { kCorr, kInde, kAnti, kNba };

const char* BenchDatasetName(BenchDataset which);

/// The four evaluation datasets at the requested size and dimensionality.
/// NBA is the synthetic career-totals table (min-transformed, first d of its
/// 5 attributes, truncated/cycled to n rows); the synthetic families follow
/// Borzsonyi et al. Deterministic in `seed`.
PointSet MakeBenchDataset(BenchDataset which, size_t n, size_t d,
                          uint64_t seed);

/// Default ratio range of the paper's experiments: [0.36, 2.75] per dim.
inline constexpr double kDefaultRatioLo = 0.36;
inline constexpr double kDefaultRatioHi = 2.75;

}  // namespace eclipse

#endif  // ECLIPSE_BENCHLIB_WORKLOADS_H_
