// ColumnarSnapshot: an immutable, reference-counted, structure-of-arrays
// view of a dataset, the unit of concurrency for the serving layer.
//
// A snapshot stores each attribute in its own contiguous
// std::vector<double> (column j holds attribute j of every row), plus a
// row-major PointSet materialization so the existing registry engines and
// the index build consume it without conversion. The corner-score kernel
// reads the columns directly: the embedding is a dense n x m weighted-sum
// matrix, and broadcasting one corner weight over a contiguous attribute
// column is the cache-friendly orientation (see CornerKernel::EmbedAll).
//
// Rows carry *stable* PointIds that survive mutation: snapshot epoch 0
// assigns ids 0..n-1 (so ids coincide with row indices and results stay
// byte-identical to the pre-snapshot engines), and every Insert mints a
// fresh id. Insert/Erase are copy-on-write: they build and return a brand
// new snapshot with epoch + 1 and leave *this untouched, so readers holding
// a shared_ptr to an older epoch keep a consistent dataset for as long as
// they need it. Publication (swapping the "current" snapshot pointer) is
// the owner's job -- see EclipseEngine.

#ifndef ECLIPSE_DATASET_COLUMNAR_H_
#define ECLIPSE_DATASET_COLUMNAR_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/result.h"
#include "geometry/point.h"

namespace eclipse {

class ColumnarSnapshot {
 public:
  /// Epoch 0 snapshot of `points`; row i gets stable id i.
  static Result<std::shared_ptr<const ColumnarSnapshot>> FromPointSet(
      PointSet points);

  size_t size() const { return ids_.size(); }
  size_t dims() const { return columns_.size(); }
  bool empty() const { return ids_.empty(); }
  /// Monotonically increasing across Insert/Erase chains; epoch 0 is the
  /// FromPointSet original.
  uint64_t epoch() const { return epoch_; }

  /// Attribute j of every row, contiguous.
  std::span<const double> column(size_t j) const { return columns_[j]; }

  /// Stable id of row i (ascending in i: inserts append fresh maximal ids
  /// and erases preserve order, so mapping a sorted row-id result through
  /// ids() keeps it sorted).
  PointId id(size_t row) const { return ids_[row]; }
  const std::vector<PointId>& ids() const { return ids_; }
  /// True while ids()[i] == i, the epoch-0 fast path (no mapping needed).
  bool ids_are_row_indices() const { return ids_are_row_indices_; }

  /// Current row of the stable id; NotFound once erased.
  Result<size_t> RowOf(PointId id) const;

  /// The row-major materialization (same rows, same order).
  const PointSet& points() const { return rows_; }

  /// Bytes held by the bulk data arrays: the d column vectors, the row-major
  /// materialization, and the stable-id array. Counts elements (size(), not
  /// capacity()) and excludes struct/allocator bookkeeping -- see DESIGN.md
  /// "Memory accounting".
  size_t MemoryFootprintBytes() const {
    size_t bytes = ids_.size() * sizeof(PointId);
    for (const auto& col : columns_) bytes += col.size() * sizeof(double);
    bytes += rows_.size() * rows_.dims() * sizeof(double);
    return bytes;
  }

  /// Copy-on-write mutations: O(n d) into a fresh snapshot with epoch + 1;
  /// *this is unchanged. Insert appends the point and reports its newly
  /// minted stable id through `id_out` (may be null).
  Result<std::shared_ptr<const ColumnarSnapshot>> Insert(
      std::span<const double> p, PointId* id_out = nullptr) const;
  Result<std::shared_ptr<const ColumnarSnapshot>> Erase(PointId id) const;

 private:
  ColumnarSnapshot() = default;

  /// Rebuilds columns_ from rows_ (the single source of truth on build).
  void BuildColumns();

  uint64_t epoch_ = 0;
  PointId next_id_ = 0;
  bool ids_are_row_indices_ = true;
  std::vector<PointId> ids_;
  std::vector<std::vector<double>> columns_;
  PointSet rows_;
};

}  // namespace eclipse

#endif  // ECLIPSE_DATASET_COLUMNAR_H_
