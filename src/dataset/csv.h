// Minimal CSV persistence for datasets (numeric columns + optional header).

#ifndef ECLIPSE_DATASET_CSV_H_
#define ECLIPSE_DATASET_CSV_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "geometry/point.h"

namespace eclipse {

/// A loaded CSV: column names (empty when the file had no header) plus data.
struct CsvTable {
  std::vector<std::string> column_names;
  PointSet points;
};

/// Writes points as CSV; when `column_names` is non-empty it must have one
/// entry per dimension and is emitted as a header row.
Status WriteCsv(const std::string& path, const PointSet& points,
                const std::vector<std::string>& column_names = {});

/// Reads a CSV of doubles. A first row containing any non-numeric field is
/// treated as the header.
Result<CsvTable> ReadCsv(const std::string& path);

}  // namespace eclipse

#endif  // ECLIPSE_DATASET_CSV_H_
