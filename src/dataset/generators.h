// Synthetic dataset generators following Borzsonyi et al., "The Skyline
// Operator" (ICDE 2001): independent, correlated, and anti-correlated
// points in [0, 1]^d. Smaller is better in every dimension.

#ifndef ECLIPSE_DATASET_GENERATORS_H_
#define ECLIPSE_DATASET_GENERATORS_H_

#include "common/random.h"
#include "geometry/point.h"

namespace eclipse {

enum class Distribution {
  kIndependent,     // INDE: uniform, independent dimensions
  kCorrelated,      // CORR: clustered around the main diagonal
  kAnticorrelated,  // ANTI: near a hyperplane sum(x) = const, spread across
                    //       dimensions (good in one dim -> bad in others)
  kClustered,       // CLUS: Gaussian mixture around a few random centers
};

const char* DistributionName(Distribution dist);

/// n points, d dimensions, coordinates in [0, 1]. Deterministic given rng.
PointSet GenerateSynthetic(Distribution dist, size_t n, size_t d, Rng* rng);

}  // namespace eclipse

#endif  // ECLIPSE_DATASET_GENERATORS_H_
