// Synthetic dataset generators following Borzsonyi et al., "The Skyline
// Operator" (ICDE 2001): independent, correlated, and anti-correlated
// points in [0, 1]^d. Smaller is better in every dimension.

#ifndef ECLIPSE_DATASET_GENERATORS_H_
#define ECLIPSE_DATASET_GENERATORS_H_

#include "common/random.h"
#include "geometry/point.h"

namespace eclipse {

enum class Distribution {
  kIndependent,       // INDE: uniform, independent dimensions
  kCorrelated,        // CORR: clustered around the main diagonal
  kAnticorrelated,    // ANTI: near a hyperplane sum(x) = const, spread across
                      //       dimensions (good in one dim -> bad in others)
  kClustered,         // CLUS: Gaussian mixture around a few random centers
  kDriftingClusters,  // DRIFT: timestamp-ordered Gaussian mixture whose
                      //        centers random-walk as the row index (the
                      //        "time") advances -- non-stationary data for
                      //        the streaming benches and tests
};

const char* DistributionName(Distribution dist);

/// n points, d dimensions, coordinates in [0, 1]. Deterministic given rng.
/// kDriftingClusters rows are timestamp-ordered: row i is the i-th arrival
/// of the drifting stream (default drift parameters; see
/// GenerateDriftingClusters for the knobs).
PointSet GenerateSynthetic(Distribution dist, size_t n, size_t d, Rng* rng);

/// The drifting-cluster stream with explicit knobs: `clusters` Gaussian
/// centers each taking one random-walk step of stddev `drift` per emitted
/// point (clamped inside [0, 1]^d), so the distribution row i is drawn
/// from differs from the one row 0 was -- replaying rows in order gives a
/// non-stationary insert stream whose skyline slowly migrates. Standard
/// deviation of points around their center is 0.05, like kClustered.
PointSet GenerateDriftingClusters(size_t n, size_t d, size_t clusters,
                                  double drift, Rng* rng);

}  // namespace eclipse

#endif  // ECLIPSE_DATASET_GENERATORS_H_
