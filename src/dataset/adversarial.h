// Adversarial dataset for the index worst case (paper Figures 13-14).
//
// Construction: choose dual hyperplanes whose coefficient vectors lie on a
// line (base + s_i * dir), each passing within a tiny jitter of a common
// anchor point in the dual query space. Then every one of the C(u,2)
// pairwise intersection hyperplanes nearly coincides with the single
// hyperplane dir . (x - anchor) = 0, i.e. "all the lines almost lie in the
// same quadrant": a midpoint quadtree cannot separate them (every cell
// around the anchor is crossed by all of them) while a sample-median cutting
// stays balanced. Coordinates are arranged so all points are skyline points.

#ifndef ECLIPSE_DATASET_ADVERSARIAL_H_
#define ECLIPSE_DATASET_ADVERSARIAL_H_

#include "common/random.h"
#include "geometry/point.h"

namespace eclipse {

/// u points in d >= 2 dimensions, all of them skyline points, whose dual
/// intersections cluster around ratio `anchor_ratio` (every coordinate of
/// the dual anchor is -anchor_ratio). `jitter` controls the cluster radius.
PointSet GenerateAdversarialDual(size_t u, size_t d, Rng* rng,
                                 double anchor_ratio = 1.0,
                                 double jitter = 1e-4);

}  // namespace eclipse

#endif  // ECLIPSE_DATASET_ADVERSARIAL_H_
