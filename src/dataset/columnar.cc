#include "dataset/columnar.h"

#include <algorithm>

#include "common/strings.h"
#include "fault/fault_injection.h"

namespace eclipse {

void ColumnarSnapshot::BuildColumns() {
  const size_t n = rows_.size();
  const size_t d = rows_.dims();
  columns_.assign(d, std::vector<double>(n));
  const double* data = rows_.data().data();
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) columns_[j][i] = data[i * d + j];
  }
}

Result<std::shared_ptr<const ColumnarSnapshot>> ColumnarSnapshot::FromPointSet(
    PointSet points) {
  if (points.dims() == 0) {
    return Status::InvalidArgument("snapshot requires d >= 1 data");
  }
  auto snap = std::shared_ptr<ColumnarSnapshot>(new ColumnarSnapshot());
  snap->rows_ = std::move(points);
  const size_t n = snap->rows_.size();
  snap->ids_.resize(n);
  for (size_t i = 0; i < n; ++i) snap->ids_[i] = static_cast<PointId>(i);
  snap->next_id_ = static_cast<PointId>(n);
  snap->BuildColumns();
  return std::shared_ptr<const ColumnarSnapshot>(std::move(snap));
}

Result<size_t> ColumnarSnapshot::RowOf(PointId id) const {
  // ids_ is sorted ascending (fresh ids append at the maximum; erases keep
  // order), so a binary search suffices.
  auto it = std::lower_bound(ids_.begin(), ids_.end(), id);
  if (it == ids_.end() || *it != id) {
    return Status::NotFound(StrFormat("point id %u not in snapshot", id));
  }
  return static_cast<size_t>(it - ids_.begin());
}

Result<std::shared_ptr<const ColumnarSnapshot>> ColumnarSnapshot::Insert(
    std::span<const double> p, PointId* id_out) const {
  if (p.size() != dims()) {
    return Status::InvalidArgument(
        StrFormat("insert of a %zu-dim point into %zu-dim snapshot", p.size(),
                  dims()));
  }
  // Fires before the copy starts: a failed insert never publishes (the
  // base snapshot is immutable), so callers observe all-or-nothing.
  ECLIPSE_FAULT("snapshot.insert");
  const size_t n = size();
  const size_t d = dims();
  auto snap = std::shared_ptr<ColumnarSnapshot>(new ColumnarSnapshot());
  snap->epoch_ = epoch_ + 1;
  // The base snapshot already holds both layouts: extend each with single
  // contiguous copies (exactly once -- reserve first, so no push_back
  // realloc re-copies) instead of re-transposing the whole matrix.
  std::vector<double> flat;
  flat.reserve((n + 1) * d);
  flat.insert(flat.end(), rows_.data().begin(), rows_.data().end());
  flat.insert(flat.end(), p.begin(), p.end());
  ECLIPSE_ASSIGN_OR_RETURN(snap->rows_, PointSet::FromFlat(d,
                                                           std::move(flat)));
  snap->columns_.resize(d);
  for (size_t j = 0; j < d; ++j) {
    std::vector<double>& col = snap->columns_[j];
    col.reserve(n + 1);
    col.insert(col.end(), columns_[j].begin(), columns_[j].end());
    col.push_back(p[j]);
  }
  snap->ids_.reserve(n + 1);
  snap->ids_.insert(snap->ids_.end(), ids_.begin(), ids_.end());
  snap->ids_.push_back(next_id_);
  snap->next_id_ = next_id_ + 1;
  snap->ids_are_row_indices_ =
      ids_are_row_indices_ && next_id_ == static_cast<PointId>(n);
  if (id_out != nullptr) *id_out = next_id_;
  return std::shared_ptr<const ColumnarSnapshot>(std::move(snap));
}

Result<std::shared_ptr<const ColumnarSnapshot>> ColumnarSnapshot::Erase(
    PointId id) const {
  ECLIPSE_ASSIGN_OR_RETURN(const size_t row, RowOf(id));
  ECLIPSE_FAULT("snapshot.erase");
  auto snap = std::shared_ptr<ColumnarSnapshot>(new ColumnarSnapshot());
  snap->epoch_ = epoch_ + 1;
  snap->next_id_ = next_id_;
  snap->ids_ = ids_;
  snap->ids_.erase(snap->ids_.begin() + static_cast<ptrdiff_t>(row));
  snap->ids_are_row_indices_ = false;
  const size_t d = dims();
  std::vector<double> flat;
  flat.reserve((size() - 1) * d);
  const double* data = rows_.data().data();
  flat.insert(flat.end(), data, data + row * d);
  flat.insert(flat.end(), data + (row + 1) * d, data + size() * d);
  ECLIPSE_ASSIGN_OR_RETURN(snap->rows_, PointSet::FromFlat(d, std::move(flat)));
  // Columns likewise: two contiguous spans around the erased row, no
  // re-transpose.
  snap->columns_.resize(d);
  for (size_t j = 0; j < d; ++j) {
    const std::vector<double>& base = columns_[j];
    std::vector<double>& col = snap->columns_[j];
    col.reserve(base.size() - 1);
    col.insert(col.end(), base.begin(),
               base.begin() + static_cast<ptrdiff_t>(row));
    col.insert(col.end(), base.begin() + static_cast<ptrdiff_t>(row) + 1,
               base.end());
  }
  return std::shared_ptr<const ColumnarSnapshot>(std::move(snap));
}

}  // namespace eclipse
