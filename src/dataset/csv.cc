#include "dataset/csv.h"

#include <fstream>

#include "common/strings.h"

namespace eclipse {

Status WriteCsv(const std::string& path, const PointSet& points,
                const std::vector<std::string>& column_names) {
  if (!column_names.empty() && column_names.size() != points.dims()) {
    return Status::InvalidArgument(
        StrFormat("WriteCsv: %zu names for %zu columns", column_names.size(),
                  points.dims()));
  }
  std::ofstream out(path);
  if (!out) {
    return Status::NotFound(StrFormat("WriteCsv: cannot open %s", path.c_str()));
  }
  if (!column_names.empty()) {
    out << Join(column_names, ",") << "\n";
  }
  for (size_t i = 0; i < points.size(); ++i) {
    for (size_t j = 0; j < points.dims(); ++j) {
      if (j > 0) out << ",";
      out << StrFormat("%.17g", points.at(i, j));
    }
    out << "\n";
  }
  out.flush();
  if (!out) {
    return Status::Internal(StrFormat("WriteCsv: write failed for %s",
                                      path.c_str()));
  }
  return Status::OK();
}

Result<CsvTable> ReadCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound(StrFormat("ReadCsv: cannot open %s", path.c_str()));
  }
  CsvTable table;
  std::string line;
  size_t dims = 0;
  size_t line_no = 0;
  std::vector<double> row;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string trimmed = Trim(line);
    if (trimmed.empty()) continue;
    std::vector<std::string> fields = Split(trimmed, ',');
    row.clear();
    bool numeric = true;
    for (const std::string& f : fields) {
      double v;
      if (!ParseDouble(f, &v)) {
        numeric = false;
        break;
      }
      row.push_back(v);
    }
    if (!numeric) {
      if (line_no == 1) {
        for (const std::string& f : fields) table.column_names.push_back(Trim(f));
        continue;
      }
      return Status::InvalidArgument(
          StrFormat("ReadCsv: non-numeric field at line %zu of %s", line_no,
                    path.c_str()));
    }
    if (dims == 0) {
      dims = row.size();
      table.points = PointSet(dims);
    }
    if (row.size() != dims) {
      return Status::InvalidArgument(
          StrFormat("ReadCsv: line %zu has %zu fields, expected %zu", line_no,
                    row.size(), dims));
    }
    ECLIPSE_RETURN_IF_ERROR(table.points.Append(row));
  }
  if (dims == 0) {
    return Status::InvalidArgument(
        StrFormat("ReadCsv: no data rows in %s", path.c_str()));
  }
  if (!table.column_names.empty() && table.column_names.size() != dims) {
    return Status::InvalidArgument(
        StrFormat("ReadCsv: header has %zu names but rows have %zu fields",
                  table.column_names.size(), dims));
  }
  return table;
}

}  // namespace eclipse
