// Synthetic NBA career-totals dataset (substitution for the paper's real
// stats.nba.com extract; see DESIGN.md section 6).
//
// 2,384 "players" with five career-total attributes -- Points, Rebounds,
// Assists, Steals, Blocks -- generated from a position-archetype model:
// a heavy-tailed career length multiplies archetype-specific per-game rates
// and a shared talent factor, reproducing the real data's properties that
// matter here: positive cross-attribute correlation, strong skew, and
// realistic magnitudes. Larger is better; use MaxToMin() before running
// minimization queries.

#ifndef ECLIPSE_DATASET_NBA_SYNTH_H_
#define ECLIPSE_DATASET_NBA_SYNTH_H_

#include <array>
#include <cstdint>
#include <string>

#include "geometry/point.h"

namespace eclipse {

/// Attribute names, in column order.
extern const std::array<std::string, 5> kNbaAttributeNames;

/// Paper's dataset size.
inline constexpr size_t kNbaDefaultPlayers = 2384;

/// Generates the dataset (max-is-better career totals, 5 columns).
PointSet GenerateNbaCareerTotals(size_t num_players = kNbaDefaultPlayers,
                                 uint64_t seed = 20150415);

}  // namespace eclipse

#endif  // ECLIPSE_DATASET_NBA_SYNTH_H_
