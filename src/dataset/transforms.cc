#include "dataset/transforms.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/strings.h"

namespace eclipse {

ColumnStats ComputeColumnStats(const PointSet& points) {
  const size_t d = points.dims();
  ColumnStats stats;
  stats.min.assign(d, std::numeric_limits<double>::infinity());
  stats.max.assign(d, -std::numeric_limits<double>::infinity());
  for (size_t i = 0; i < points.size(); ++i) {
    for (size_t j = 0; j < d; ++j) {
      stats.min[j] = std::min(stats.min[j], points.at(i, j));
      stats.max[j] = std::max(stats.max[j], points.at(i, j));
    }
  }
  return stats;
}

PointSet MaxToMin(const PointSet& points) {
  ColumnStats stats = ComputeColumnStats(points);
  const size_t d = points.dims();
  std::vector<double> flat;
  flat.reserve(points.size() * d);
  for (size_t i = 0; i < points.size(); ++i) {
    for (size_t j = 0; j < d; ++j) {
      flat.push_back(stats.max[j] - points.at(i, j));
    }
  }
  auto ps = PointSet::FromFlat(d, std::move(flat));
  return *ps;
}

PointSet Normalize01(const PointSet& points) {
  ColumnStats stats = ComputeColumnStats(points);
  const size_t d = points.dims();
  std::vector<double> flat;
  flat.reserve(points.size() * d);
  for (size_t i = 0; i < points.size(); ++i) {
    for (size_t j = 0; j < d; ++j) {
      const double span = stats.max[j] - stats.min[j];
      flat.push_back(span > 0.0 ? (points.at(i, j) - stats.min[j]) / span
                                : 0.0);
    }
  }
  auto ps = PointSet::FromFlat(d, std::move(flat));
  return *ps;
}

Result<PointSet> PowerTransform(const PointSet& points, double p) {
  if (!(p > 0.0)) {
    return Status::InvalidArgument("PowerTransform: p must be positive");
  }
  const size_t d = points.dims();
  std::vector<double> flat;
  flat.reserve(points.size() * d);
  for (size_t i = 0; i < points.size(); ++i) {
    for (size_t j = 0; j < d; ++j) {
      const double x = points.at(i, j);
      if (x < 0.0) {
        return Status::InvalidArgument(StrFormat(
            "PowerTransform: negative coordinate at row %zu col %zu", i, j));
      }
      flat.push_back(std::pow(x, p));
    }
  }
  return PointSet::FromFlat(d, std::move(flat));
}

Result<PointSet> SelectColumns(const PointSet& points,
                               const std::vector<size_t>& columns) {
  if (columns.empty()) {
    return Status::InvalidArgument("SelectColumns: no columns requested");
  }
  for (size_t c : columns) {
    if (c >= points.dims()) {
      return Status::InvalidArgument(
          StrFormat("SelectColumns: column %zu out of range (d = %zu)", c,
                    points.dims()));
    }
  }
  std::vector<double> flat;
  flat.reserve(points.size() * columns.size());
  for (size_t i = 0; i < points.size(); ++i) {
    for (size_t c : columns) {
      flat.push_back(points.at(i, c));
    }
  }
  return PointSet::FromFlat(columns.size(), std::move(flat));
}

}  // namespace eclipse
