#include "dataset/nba_synth.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"

namespace eclipse {

const std::array<std::string, 5> kNbaAttributeNames = {
    "PTS", "REB", "AST", "STL", "BLK"};

namespace {

struct Archetype {
  // Per-game base rates: PTS, REB, AST, STL, BLK.
  double rates[5];
  double probability;
};

constexpr Archetype kArchetypes[] = {
    // guards: scoring + playmaking, few blocks
    {{10.5, 2.6, 4.8, 1.00, 0.15}, 0.35},
    // wings: balanced
    {{11.0, 4.6, 2.4, 0.90, 0.45}, 0.35},
    // bigs: rebounds + blocks
    {{9.0, 8.2, 1.5, 0.55, 1.30}, 0.30},
};

}  // namespace

PointSet GenerateNbaCareerTotals(size_t num_players, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> flat;
  flat.reserve(num_players * 5);
  for (size_t i = 0; i < num_players; ++i) {
    // Pick archetype.
    double roll = rng.NextDouble();
    const Archetype* arch = &kArchetypes[0];
    double acc = 0.0;
    for (const Archetype& a : kArchetypes) {
      acc += a.probability;
      if (roll < acc) {
        arch = &a;
        break;
      }
    }
    // Career length in games: lognormal, clamped to plausible NBA bounds.
    // Most careers are short; a small elite plays 1000+ games.
    double games = std::exp(rng.Gaussian(5.05, 1.05));
    games = std::clamp(games, 1.0, 1611.0);
    // Shared talent factor: lifts (or depresses) all attributes together,
    // inducing the positive cross-attribute correlation of career totals.
    const double talent = std::exp(rng.Gaussian(0.0, 0.45));
    // Longer careers correlate with better players.
    const double longevity_boost = 1.0 + 0.25 * std::log1p(games / 400.0);
    for (int a = 0; a < 5; ++a) {
      const double rate_noise = std::exp(rng.Gaussian(0.0, 0.30));
      double per_game = arch->rates[a] * talent * longevity_boost * rate_noise;
      double total = std::floor(per_game * games);
      flat.push_back(std::max(0.0, total));
    }
  }
  auto ps = PointSet::FromFlat(5, std::move(flat));
  return *ps;
}

}  // namespace eclipse
