#include "dataset/adversarial.h"

#include <cassert>

namespace eclipse {

PointSet GenerateAdversarialDual(size_t u, size_t d, Rng* rng,
                                 double anchor_ratio, double jitter) {
  assert(d >= 2);
  assert(anchor_ratio > 0.0);
  const size_t k = d - 1;  // dual space dimensionality
  // Coefficient-space line: p_i[j] = base + s_i * dir_j, slightly different
  // slopes per dimension to avoid exact degeneracies.
  std::vector<double> dir(k);
  for (size_t j = 0; j < k; ++j) dir[j] = 1.0 + 0.03 * static_cast<double>(j);
  const double base = 1.0;
  // Depth of the common anchor below x_d = 0; large enough to keep the last
  // coordinate positive for every point.
  double max_coeff_sum = 0.0;
  for (size_t j = 0; j < k; ++j) {
    max_coeff_sum += base + static_cast<double>(u) * dir[j];
  }
  const double anchor_depth = anchor_ratio * max_coeff_sum * 1.1 + 10.0;

  std::vector<double> flat;
  flat.reserve(u * d);
  for (size_t i = 0; i < u; ++i) {
    const double s = static_cast<double>(i + 1);
    double coeff_sum = 0.0;
    for (size_t j = 0; j < k; ++j) {
      const double c = base + s * dir[j] + jitter * rng->Uniform(-1.0, 1.0);
      flat.push_back(c);
      coeff_sum += c;
    }
    // Pass within `jitter` of the anchor (-anchor_ratio, ..., -anchor_ratio,
    // -anchor_depth) in the dual space.
    const double last = anchor_depth - anchor_ratio * coeff_sum +
                        jitter * rng->Uniform(-1.0, 1.0);
    flat.push_back(last);
  }
  auto ps = PointSet::FromFlat(d, std::move(flat));
  return *ps;
}

}  // namespace eclipse
