// Column transforms between max-is-better and min-is-better conventions,
// plus normalization helpers.

#ifndef ECLIPSE_DATASET_TRANSFORMS_H_
#define ECLIPSE_DATASET_TRANSFORMS_H_

#include "geometry/point.h"

namespace eclipse {

/// Per-column statistics.
struct ColumnStats {
  std::vector<double> min;
  std::vector<double> max;
};

ColumnStats ComputeColumnStats(const PointSet& points);

/// Maps each column x -> column_max - x, turning a larger-is-better dataset
/// into the library's smaller-is-better convention while preserving all
/// dominance relations (each column is independently reversed).
PointSet MaxToMin(const PointSet& points);

/// Min-max normalization of every column to [0, 1]; constant columns map
/// to 0. Preserves dominance relations (strictly monotone per column when
/// non-constant).
PointSet Normalize01(const PointSet& points);

/// Keeps only the listed columns, in the listed order.
Result<PointSet> SelectColumns(const PointSet& points,
                               const std::vector<size_t>& columns);

/// Raises every coordinate to the given power (paper footnote 2: eclipse
/// under the weighted Lp score sum_j w[j] * x[j]^p equals eclipse of the
/// transformed points under the linear score, because x -> x^p is strictly
/// monotone on nonnegative coordinates and the 1/p root does not change
/// rankings). Requires p > 0 and nonnegative coordinates.
Result<PointSet> PowerTransform(const PointSet& points, double p);

}  // namespace eclipse

#endif  // ECLIPSE_DATASET_TRANSFORMS_H_
