#include "dataset/generators.h"

#include <algorithm>
#include <cassert>

namespace eclipse {

namespace {

double Clamp01(double x) { return std::clamp(x, 0.0, 1.0); }

// Peaked distribution around `center` (sum of uniforms -> approximately
// normal with the given half-width), clamped to [0, 1]. This mirrors the
// original generator's "peak" helper.
double Peaked(Rng* rng, double center, double half_width) {
  double acc = 0.0;
  for (int i = 0; i < 12; ++i) acc += rng->NextDouble();
  // acc/12 has mean 0.5 and std 1/12; rescale to the requested width.
  double offset = (acc / 12.0 - 0.5) * 2.0 * half_width;
  return Clamp01(center + offset);
}

void AppendIndependent(size_t d, Rng* rng, std::vector<double>* out) {
  for (size_t j = 0; j < d; ++j) out->push_back(rng->NextDouble());
}

void AppendCorrelated(size_t d, Rng* rng, std::vector<double>* out) {
  // A position on the diagonal plus small per-dimension peaked offsets.
  const double v = Peaked(rng, 0.5, 0.5);
  for (size_t j = 0; j < d; ++j) {
    out->push_back(Peaked(rng, v, 0.12));
  }
}

// Cluster centers for the Gaussian-mixture family; regenerated per call of
// GenerateSynthetic so one dataset has one fixed set of centers.
std::vector<std::vector<double>> MakeClusterCenters(size_t d, Rng* rng) {
  constexpr size_t kClusters = 5;
  std::vector<std::vector<double>> centers(kClusters,
                                           std::vector<double>(d, 0.0));
  for (auto& c : centers) {
    for (auto& v : c) v = rng->Uniform(0.1, 0.9);
  }
  return centers;
}

void AppendClustered(const std::vector<std::vector<double>>& centers, size_t d,
                     Rng* rng, std::vector<double>* out) {
  const auto& c = centers[rng->NextIndex(centers.size())];
  for (size_t j = 0; j < d; ++j) {
    out->push_back(Clamp01(c[j] + rng->Gaussian(0.0, 0.05)));
  }
}

void AppendAnticorrelated(size_t d, Rng* rng, std::vector<double>* out) {
  // Start on the plane sum(x) = d*v with v tightly concentrated, then move
  // mass between random coordinate pairs, preserving the sum. Points end up
  // with a near-constant total, so being good in one dimension forces being
  // bad in another.
  const double v = Clamp01(rng->Gaussian(0.5, 0.05));
  std::vector<double> x(d, v);
  const size_t steps = 4 * d;
  for (size_t s = 0; s < steps; ++s) {
    size_t i = static_cast<size_t>(rng->NextIndex(d));
    size_t j = static_cast<size_t>(rng->NextIndex(d));
    if (i == j) continue;
    // Max transferable mass keeping both coordinates in [0, 1].
    const double room = std::min(1.0 - x[i], x[j]);
    if (room <= 0.0) continue;
    const double delta = rng->Uniform(0.0, room);
    x[i] += delta;
    x[j] -= delta;
  }
  out->insert(out->end(), x.begin(), x.end());
}

}  // namespace

const char* DistributionName(Distribution dist) {
  switch (dist) {
    case Distribution::kIndependent:
      return "INDE";
    case Distribution::kCorrelated:
      return "CORR";
    case Distribution::kAnticorrelated:
      return "ANTI";
    case Distribution::kClustered:
      return "CLUS";
    case Distribution::kDriftingClusters:
      return "DRIFT";
  }
  return "unknown";
}

PointSet GenerateDriftingClusters(size_t n, size_t d, size_t clusters,
                                  double drift, Rng* rng) {
  assert(d >= 1 && clusters >= 1);
  std::vector<std::vector<double>> centers(clusters,
                                           std::vector<double>(d, 0.0));
  for (auto& c : centers) {
    for (auto& v : c) v = rng->Uniform(0.2, 0.8);
  }
  std::vector<double> flat;
  flat.reserve(n * d);
  for (size_t i = 0; i < n; ++i) {
    const auto& c = centers[rng->NextIndex(clusters)];
    for (size_t j = 0; j < d; ++j) {
      flat.push_back(Clamp01(c[j] + rng->Gaussian(0.0, 0.05)));
    }
    // One random-walk step per arrival: by row n the mixture has wandered
    // O(drift * sqrt(n)) away from where row 0 sampled it.
    for (auto& center : centers) {
      for (auto& v : center) {
        v = std::clamp(v + rng->Gaussian(0.0, drift), 0.0, 1.0);
      }
    }
  }
  return *PointSet::FromFlat(d, std::move(flat));
}

PointSet GenerateSynthetic(Distribution dist, size_t n, size_t d, Rng* rng) {
  assert(d >= 1);
  if (dist == Distribution::kDriftingClusters) {
    return GenerateDriftingClusters(n, d, /*clusters=*/4, /*drift=*/0.004,
                                    rng);
  }
  std::vector<double> flat;
  flat.reserve(n * d);
  std::vector<std::vector<double>> centers;
  if (dist == Distribution::kClustered) {
    centers = MakeClusterCenters(d, rng);
  }
  for (size_t i = 0; i < n; ++i) {
    switch (dist) {
      case Distribution::kIndependent:
        AppendIndependent(d, rng, &flat);
        break;
      case Distribution::kCorrelated:
        AppendCorrelated(d, rng, &flat);
        break;
      case Distribution::kAnticorrelated:
        AppendAnticorrelated(d, rng, &flat);
        break;
      case Distribution::kClustered:
        AppendClustered(centers, d, rng, &flat);
        break;
      case Distribution::kDriftingClusters:
        break;  // handled by the early return above
    }
  }
  auto ps = PointSet::FromFlat(d, std::move(flat));
  return *ps;  // n*d values by construction
}

}  // namespace eclipse
