#include "skyline/layers.h"

#include <algorithm>
#include <numeric>

#include "skyline/dominance.h"
#include "skyline/skyline.h"

namespace eclipse {

Result<std::vector<std::vector<PointId>>> SkylineLayers(const PointSet& points,
                                                        size_t max_layers,
                                                        Statistics* stats) {
  std::vector<std::vector<PointId>> layers;
  if (points.empty()) return layers;

  // Peel with SFS directly on the shrinking id set: sort once by coordinate
  // sum, then repeatedly scan the remainder against the current layer.
  const size_t n = points.size();
  const size_t d = points.dims();
  std::vector<PointId> remaining(n);
  std::iota(remaining.begin(), remaining.end(), 0);
  std::vector<double> sums(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    auto row = points[i];
    for (double v : row) sums[i] += v;
  }
  std::sort(remaining.begin(), remaining.end(), [&](PointId a, PointId b) {
    if (sums[a] != sums[b]) return sums[a] < sums[b];
    return a < b;
  });

  uint64_t comparisons = 0;
  while (!remaining.empty() &&
         (max_layers == 0 || layers.size() < max_layers)) {
    std::vector<PointId> layer;
    std::vector<PointId> rest;
    for (PointId id : remaining) {
      bool dominated = false;
      for (PointId s : layer) {
        ++comparisons;
        if (DominatesPrefix(points[s], points[id], d)) {
          dominated = true;
          break;
        }
      }
      if (dominated) {
        rest.push_back(id);
      } else {
        layer.push_back(id);
      }
    }
    std::sort(layer.begin(), layer.end());
    layers.push_back(std::move(layer));
    remaining = std::move(rest);  // still in sum order
  }
  if (stats != nullptr) {
    stats->Add(Ticker::kSkylineComparisons, comparisons);
  }
  return layers;
}

Result<std::vector<PointId>> LayeredTopK(const PointSet& points, size_t k) {
  std::vector<PointId> out;
  if (k == 0) return out;
  ECLIPSE_ASSIGN_OR_RETURN(auto layers, SkylineLayers(points));
  for (const auto& layer : layers) {
    for (PointId id : layer) {
      if (out.size() == k) return out;
      out.push_back(id);
    }
  }
  return out;
}

}  // namespace eclipse
