#include <algorithm>
#include <numeric>

#include "skyline/dominance.h"
#include "skyline/flat_skyline.h"
#include "skyline/skyline.h"

namespace eclipse {

std::vector<PointId> SkylineSfs(const PointSet& points, Statistics* stats) {
  const size_t n = points.size();
  const size_t d = points.dims();
  std::vector<PointId> order(n);
  std::iota(order.begin(), order.end(), 0);

  // Sort by coordinate sum (a monotone preference function): any dominator
  // has a strictly smaller sum, or an equal sum only for identical rows, so
  // after the sort every point's dominators precede it. The keys come from
  // the shared blocked columnwise pass (no per-row AoS gather) and are
  // bitwise identical to a scalar row accumulate -- the flat SFS reuses the
  // same computation.
  std::vector<double> sums(n);
  ComputeRowSums(FlatMatrixView::Of(points), sums.data());
  std::sort(order.begin(), order.end(), [&](PointId a, PointId b) {
    if (sums[a] != sums[b]) return sums[a] < sums[b];
    return a < b;
  });

  uint64_t comparisons = 0;
  std::vector<PointId> skyline;
  for (PointId id : order) {
    auto p = points[id];
    bool dominated = false;
    for (PointId s : skyline) {
      ++comparisons;
      if (DominatesPrefix(points[s], p, d)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) skyline.push_back(id);
  }
  if (stats != nullptr) {
    stats->Add(Ticker::kSkylineComparisons, comparisons);
  }
  std::sort(skyline.begin(), skyline.end());
  return skyline;
}

}  // namespace eclipse
