#include "skyline/skyline.h"

#include <algorithm>

#include "index/packed_rtree.h"
#include "skyline/bbs.h"
#include "skyline/dominance.h"
#include "skyline/flat_skyline.h"

namespace eclipse {

Result<std::vector<PointId>> ComputeSkyline(const PointSet& points,
                                            SkylineAlgorithm algorithm,
                                            Statistics* stats) {
  if (points.dims() == 0 || points.empty()) {
    return std::vector<PointId>{};
  }
  // The flat-capable algorithms run the SIMD kernels directly over the
  // PointSet's row-major storage -- zero copy, identical id sets.
  const FlatMatrixView view = FlatMatrixView::Of(points);
  switch (algorithm) {
    case SkylineAlgorithm::kAuto:
      if (points.dims() == 2) return SkylineSortSweep2D(points, stats);
      return FlatSkyline(view, ChooseFlatSkylinePath(algorithm, view.n),
                         stats);
    case SkylineAlgorithm::kBnl:
      return FlatSkylineBnl(view, stats);
    case SkylineAlgorithm::kSfs:
      return FlatSkylineSfs(view, stats);
    case SkylineAlgorithm::kSortSweep2D:
      return SkylineSortSweep2D(points, stats);
    case SkylineAlgorithm::kDivideConquer:
      return SkylineDivideConquer(points, stats);
    case SkylineAlgorithm::kParallelMerge:
      return FlatSkyline(view, ChooseFlatSkylinePath(algorithm, view.n),
                         stats);
    case SkylineAlgorithm::kBbs: {
      ECLIPSE_ASSIGN_OR_RETURN(PackedRTree tree, PackedRTree::Build(points));
      return BbsSkyline(points, tree, /*constraint=*/nullptr, stats);
    }
  }
  return Status::InvalidArgument("unknown skyline algorithm");
}

const char* ComputeSkylinePathName(SkylineAlgorithm algorithm, size_t n,
                                   size_t dims) {
  switch (algorithm) {
    case SkylineAlgorithm::kAuto:
      if (dims == 2) return "sort-sweep-2d";
      return FlatSkylinePathName(ChooseFlatSkylinePath(algorithm, n));
    case SkylineAlgorithm::kBnl:
      return FlatSkylinePathName(FlatSkylinePath::kBnl);
    case SkylineAlgorithm::kSfs:
      return FlatSkylinePathName(FlatSkylinePath::kSfs);
    case SkylineAlgorithm::kSortSweep2D:
      return "sort-sweep-2d";
    case SkylineAlgorithm::kDivideConquer:
      return "divide-conquer";
    case SkylineAlgorithm::kParallelMerge:
      return FlatSkylinePathName(ChooseFlatSkylinePath(algorithm, n));
    case SkylineAlgorithm::kBbs:
      return "bbs";
  }
  return "unknown";
}

std::vector<PointId> NaiveSkyline(const PointSet& points) {
  std::vector<PointId> out;
  for (PointId i = 0; i < points.size(); ++i) {
    bool dominated = false;
    for (PointId j = 0; j < points.size(); ++j) {
      if (i == j) continue;
      if (Dominates(points[j], points[i])) {
        dominated = true;
        break;
      }
    }
    if (!dominated) out.push_back(i);
  }
  return out;
}

bool VerifySkyline(const PointSet& points, const std::vector<PointId>& ids) {
  std::vector<PointId> expected = NaiveSkyline(points);
  std::vector<PointId> got = ids;
  std::sort(got.begin(), got.end());
  return got == expected;
}

}  // namespace eclipse
