#include "skyline/skyline.h"

#include <algorithm>

#include "skyline/dominance.h"

namespace eclipse {

Result<std::vector<PointId>> ComputeSkyline(const PointSet& points,
                                            SkylineAlgorithm algorithm,
                                            Statistics* stats) {
  if (points.dims() == 0 || points.empty()) {
    return std::vector<PointId>{};
  }
  switch (algorithm) {
    case SkylineAlgorithm::kAuto:
      if (points.dims() == 2) return SkylineSortSweep2D(points, stats);
      return SkylineSfs(points, stats);
    case SkylineAlgorithm::kBnl:
      return SkylineBnl(points, stats);
    case SkylineAlgorithm::kSfs:
      return SkylineSfs(points, stats);
    case SkylineAlgorithm::kSortSweep2D:
      return SkylineSortSweep2D(points, stats);
    case SkylineAlgorithm::kDivideConquer:
      return SkylineDivideConquer(points, stats);
  }
  return Status::InvalidArgument("unknown skyline algorithm");
}

std::vector<PointId> NaiveSkyline(const PointSet& points) {
  std::vector<PointId> out;
  for (PointId i = 0; i < points.size(); ++i) {
    bool dominated = false;
    for (PointId j = 0; j < points.size(); ++j) {
      if (i == j) continue;
      if (Dominates(points[j], points[i])) {
        dominated = true;
        break;
      }
    }
    if (!dominated) out.push_back(i);
  }
  return out;
}

bool VerifySkyline(const PointSet& points, const std::vector<PointId>& ids) {
  std::vector<PointId> expected = NaiveSkyline(points);
  std::vector<PointId> got = ids;
  std::sort(got.begin(), got.end());
  return got == expected;
}

}  // namespace eclipse
