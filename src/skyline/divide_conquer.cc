// Bentley / Kung-Luccio-Preparata multidimensional divide & conquer for the
// minima set ("ECDF algorithm" in the paper's citation [3]).
//
// Semantics used throughout this file, on rows made unique up front:
//   * Maxima(S, k): members of S not k-dominated, where t k-dominates s iff
//     t <= s on dims [0, k) and the two k-prefixes differ (which forces a
//     strict < in some dim < k).
//   * Filter(A, B, k): removes from B every b weakly dominated on dims
//     [0, k) by some a in A. Strictness is supplied by the caller's split
//     dimension, so the filter itself is purely weak.
//
// Degenerate splits (heavily tied coordinates) fall back to one dimension
// down (all values equal) or to brute force, which keeps the algorithm
// exact on any input at the cost of the usual O(n log^{d-2} n) bound only
// holding for non-pathological data.

#include <algorithm>
#include <limits>
#include <numeric>

#include "skyline/dominance.h"
#include "skyline/skyline.h"

namespace eclipse {

namespace {

constexpr size_t kBruteForceSize = 24;
constexpr size_t kBruteForcePairProduct = 1024;

class DncSolver {
 public:
  DncSolver(const PointSet& points, Statistics* stats)
      : points_(points), stats_(stats) {}

  std::vector<PointId> Run() {
    const size_t n = points_.size();
    if (n == 0) return {};
    // Group exact duplicates; the solver works on unique representatives.
    std::vector<PointId> order(n);
    std::iota(order.begin(), order.end(), 0);
    const size_t d = points_.dims();
    std::sort(order.begin(), order.end(), [&](PointId a, PointId b) {
      for (size_t j = 0; j < d; ++j) {
        if (points_.at(a, j) != points_.at(b, j))
          return points_.at(a, j) < points_.at(b, j);
      }
      return a < b;
    });
    std::vector<uint32_t> reps;          // representative original ids
    std::vector<std::pair<size_t, size_t>> groups;  // [begin, end) in order
    size_t i = 0;
    while (i < n) {
      size_t j = i + 1;
      while (j < n && PointsEqual(points_[order[i]], points_[order[j]])) ++j;
      reps.push_back(order[i]);
      groups.emplace_back(i, j);
      i = j;
    }
    std::vector<uint32_t> ids(reps.size());
    std::iota(ids.begin(), ids.end(), 0);
    reps_ = std::move(reps);
    std::vector<uint32_t> maxima = Maxima(std::move(ids), d);
    std::vector<PointId> out;
    for (uint32_t u : maxima) {
      for (size_t g = groups[u].first; g < groups[u].second; ++g) {
        out.push_back(order[g]);
      }
    }
    std::sort(out.begin(), out.end());
    return out;
  }

 private:
  double Coord(uint32_t u, size_t j) const { return points_.at(reps_[u], j); }

  void Tick(uint64_t n) {
    if (stats_ != nullptr) stats_->Add(Ticker::kSkylineComparisons, n);
  }

  bool PrefixEqual(uint32_t a, uint32_t b, size_t k) const {
    for (size_t j = 0; j < k; ++j) {
      if (Coord(a, j) != Coord(b, j)) return false;
    }
    return true;
  }

  bool WeakPrefix(uint32_t a, uint32_t b, size_t k) const {
    for (size_t j = 0; j < k; ++j) {
      if (Coord(a, j) > Coord(b, j)) return false;
    }
    return true;
  }

  std::vector<uint32_t> BruteMaxima(const std::vector<uint32_t>& ids,
                                    size_t k) {
    std::vector<uint32_t> out;
    for (uint32_t s : ids) {
      bool dominated = false;
      for (uint32_t t : ids) {
        if (t == s) continue;
        Tick(1);
        if (WeakPrefix(t, s, k) && !PrefixEqual(t, s, k)) {
          dominated = true;
          break;
        }
      }
      if (!dominated) out.push_back(s);
    }
    return out;
  }

  std::vector<uint32_t> Maxima2D(std::vector<uint32_t> ids) {
    std::sort(ids.begin(), ids.end(), [&](uint32_t a, uint32_t b) {
      if (Coord(a, 0) != Coord(b, 0)) return Coord(a, 0) < Coord(b, 0);
      if (Coord(a, 1) != Coord(b, 1)) return Coord(a, 1) < Coord(b, 1);
      return a < b;
    });
    std::vector<uint32_t> out;
    double best_y = std::numeric_limits<double>::infinity();
    size_t i = 0;
    while (i < ids.size()) {
      size_t end = i;
      const double x = Coord(ids[i], 0);
      while (end < ids.size() && Coord(ids[end], 0) == x) ++end;
      const double ymin = Coord(ids[i], 1);
      Tick(1);
      if (ymin < best_y) {
        for (size_t t = i; t < end && Coord(ids[t], 1) == ymin; ++t) {
          out.push_back(ids[t]);
        }
        best_y = ymin;
      }
      i = end;
    }
    return out;
  }

  std::vector<uint32_t> Maxima(std::vector<uint32_t> ids, size_t k) {
    if (ids.size() <= 1) return ids;
    if (k == 1) {
      double mn = std::numeric_limits<double>::infinity();
      for (uint32_t s : ids) mn = std::min(mn, Coord(s, 0));
      std::vector<uint32_t> out;
      for (uint32_t s : ids) {
        if (Coord(s, 0) == mn) out.push_back(s);
      }
      return out;
    }
    if (k == 2) return Maxima2D(std::move(ids));
    if (ids.size() <= kBruteForceSize) return BruteMaxima(ids, k);

    const size_t split_dim = k - 1;
    // All equal on the split dim: k-dominance reduces to (k-1)-dominance.
    bool all_equal = true;
    const double v0 = Coord(ids[0], split_dim);
    for (uint32_t s : ids) {
      if (Coord(s, split_dim) != v0) {
        all_equal = false;
        break;
      }
    }
    if (all_equal) return Maxima(std::move(ids), k - 1);

    std::vector<double> values;
    values.reserve(ids.size());
    for (uint32_t s : ids) values.push_back(Coord(s, split_dim));
    std::nth_element(values.begin(), values.begin() + values.size() / 2,
                     values.end());
    double m = values[values.size() / 2];

    std::vector<uint32_t> low, high;
    for (uint32_t s : ids) {
      (Coord(s, split_dim) <= m ? low : high).push_back(s);
    }
    if (high.empty()) {
      // m is the maximum; split off the max-value group instead.
      low.clear();
      for (uint32_t s : ids) {
        (Coord(s, split_dim) < m ? low : high).push_back(s);
      }
    }
    std::vector<uint32_t> m_low = Maxima(std::move(low), k);
    std::vector<uint32_t> m_high = Maxima(std::move(high), k);
    // Points in the high half additionally have to survive the low half's
    // maxima on the remaining dims (the split dim supplies strictness).
    std::vector<uint32_t> survivors = Filter(m_low, m_high, k - 1);
    m_low.insert(m_low.end(), survivors.begin(), survivors.end());
    return m_low;
  }

  std::vector<uint32_t> BruteFilter(const std::vector<uint32_t>& a,
                                    const std::vector<uint32_t>& b, size_t k) {
    std::vector<uint32_t> out;
    for (uint32_t s : b) {
      bool dominated = false;
      for (uint32_t t : a) {
        Tick(1);
        if (WeakPrefix(t, s, k)) {
          dominated = true;
          break;
        }
      }
      if (!dominated) out.push_back(s);
    }
    return out;
  }

  std::vector<uint32_t> Filter2D(std::vector<uint32_t> a,
                                 std::vector<uint32_t> b) {
    auto by_x = [&](uint32_t s, uint32_t t) {
      return Coord(s, 0) < Coord(t, 0);
    };
    std::sort(a.begin(), a.end(), by_x);
    std::sort(b.begin(), b.end(), by_x);
    std::vector<uint32_t> out;
    size_t ai = 0;
    double min_y = std::numeric_limits<double>::infinity();
    for (uint32_t s : b) {
      while (ai < a.size() && Coord(a[ai], 0) <= Coord(s, 0)) {
        min_y = std::min(min_y, Coord(a[ai], 1));
        ++ai;
      }
      Tick(1);
      if (!(min_y <= Coord(s, 1))) out.push_back(s);
    }
    return out;
  }

  std::vector<uint32_t> Filter1D(const std::vector<uint32_t>& a,
                                 const std::vector<uint32_t>& b) {
    double mn = std::numeric_limits<double>::infinity();
    for (uint32_t t : a) mn = std::min(mn, Coord(t, 0));
    std::vector<uint32_t> out;
    for (uint32_t s : b) {
      Tick(1);
      if (!(mn <= Coord(s, 0))) out.push_back(s);
    }
    return out;
  }

  // Returns the members of b not weakly dominated on dims [0, k) by any
  // member of a.
  std::vector<uint32_t> Filter(const std::vector<uint32_t>& a,
                               std::vector<uint32_t> b, size_t k) {
    if (a.empty() || b.empty()) return b;
    if (k == 1) return Filter1D(a, b);
    if (k == 2) return Filter2D(a, std::move(b));
    if (a.size() * b.size() <= kBruteForcePairProduct) {
      return BruteFilter(a, b, k);
    }

    const size_t split_dim = k - 1;
    std::vector<double> values;
    values.reserve(a.size() + b.size());
    for (uint32_t s : a) values.push_back(Coord(s, split_dim));
    for (uint32_t s : b) values.push_back(Coord(s, split_dim));
    std::nth_element(values.begin(), values.begin() + values.size() / 2,
                     values.end());
    const double m = values[values.size() / 2];

    std::vector<uint32_t> a_lo, a_hi, b_lo, b_hi;
    for (uint32_t s : a) {
      (Coord(s, split_dim) <= m ? a_lo : a_hi).push_back(s);
    }
    for (uint32_t s : b) {
      (Coord(s, split_dim) < m ? b_lo : b_hi).push_back(s);
    }

    const size_t total = a.size() + b.size();
    // Same-k subproblems; degenerate ties around the median can stall the
    // recursion, in which case brute force finishes the job exactly.
    std::vector<uint32_t> b_lo_left;
    if (!a_lo.empty() && !b_lo.empty()) {
      if (a_lo.size() + b_lo.size() < total) {
        b_lo_left = Filter(a_lo, std::move(b_lo), k);
      } else {
        b_lo_left = BruteFilter(a_lo, b_lo, k);
      }
    } else {
      b_lo_left = std::move(b_lo);
    }
    std::vector<uint32_t> b_hi_left;
    if (!a_hi.empty() && !b_hi.empty()) {
      if (a_hi.size() + b_hi.size() < total) {
        b_hi_left = Filter(a_hi, std::move(b_hi), k);
      } else {
        b_hi_left = BruteFilter(a_hi, b_hi, k);
      }
    } else {
      b_hi_left = std::move(b_hi);
    }
    // Cross pairs: a_lo <= m <= b_hi on the split dim, so the split dim can
    // be dropped (weak comparison there always holds).
    if (!a_lo.empty() && !b_hi_left.empty()) {
      b_hi_left = Filter(a_lo, std::move(b_hi_left), k - 1);
    }
    b_lo_left.insert(b_lo_left.end(), b_hi_left.begin(), b_hi_left.end());
    return b_lo_left;
  }

  const PointSet& points_;
  Statistics* stats_;
  std::vector<PointId> reps_;
};

}  // namespace

std::vector<PointId> SkylineDivideConquer(const PointSet& points,
                                          Statistics* stats) {
  return DncSolver(points, stats).Run();
}

}  // namespace eclipse
