#include "skyline/flat_skyline.h"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "common/thread_pool.h"
#include "skyline/simd_dominance.h"

namespace eclipse {

namespace {

/// Rows per block for the columnwise sum pass (same sizing rationale as
/// CornerKernel::EmbedColumns: the partial-sum block stays L1/L2 resident
/// while each column streams over it).
constexpr size_t kSumRowBlock = 128;

/// Auto-partitioning only splits when every chunk gets at least this many
/// rows; below that a single SFS wins on constant factors.
constexpr size_t kMinParallelChunkRows = 4096;

/// Rows between deadline/cancel polls: frequent enough that a runaway scan
/// stops within microseconds, rare enough that Clock::now() never shows up
/// in a profile.
constexpr size_t kCtxCheckRows = 256;

/// True when the kernel must bail (expired deadline or cancellation).
bool CtxExpired(const QueryContext* ctx) {
  return ctx != nullptr && !ctx->Check().ok();
}

/// A dense copy of the accepted skyline rows plus their ids: the inner
/// dominance loop streams this contiguous buffer instead of chasing
/// scattered rows of the (much larger) input matrix.
class SkylineWindow {
 public:
  explicit SkylineWindow(size_t m) : m_(m) {}

  size_t size() const { return ids_.size(); }
  const double* rows() const { return rows_.data(); }
  const double* row(size_t r) const { return rows_.data() + r * m_; }
  PointId id(size_t r) const { return ids_[r]; }
  std::vector<PointId>& ids() { return ids_; }

  void Append(const double* row, PointId id) {
    rows_.insert(rows_.end(), row, row + m_);
    ids_.push_back(id);
  }

  /// Overwrites slot `dst` with slot `src` (BNL compaction).
  void MoveSlot(size_t dst, size_t src) {
    if (dst == src) return;
    std::copy_n(rows_.data() + src * m_, m_, rows_.data() + dst * m_);
    ids_[dst] = ids_[src];
  }

  void Resize(size_t count) {
    rows_.resize(count * m_);
    ids_.resize(count);
  }

 private:
  size_t m_;
  std::vector<double> rows_;
  std::vector<PointId> ids_;
};

/// SFS over rows [begin, end) of the view; returned ids are absolute row
/// indices, sorted ascending. `comparisons` accumulates dominance tests so
/// parallel callers can aggregate without sharing a Statistics.
///
/// A SaLSa-style pivot pre-filter runs before the sort: the min-sum row is
/// a skyline member with maximal pruning power (corner-score columns are
/// strongly correlated, so it typically dominates almost everything), and
/// one linear SIMD pass drops every row it properly dominates. Dominated
/// rows can never be skyline members and removing them never changes
/// anyone else's dominators, so the result is identical -- but the O(k log
/// k) sort now runs over the k survivors instead of all n rows, which is
/// where the legacy path spends most of its time.
std::vector<PointId> SfsOverRange(const FlatMatrixView& view, size_t begin,
                                  size_t end, uint64_t* comparisons,
                                  const QueryContext* ctx = nullptr) {
  const size_t count = end - begin;
  if (count == 0) return {};
  const size_t m = view.m;
  std::vector<double> sums(count);
  FlatMatrixView chunk{view.row(begin), count, m, view.stride};
  ComputeRowSums(chunk, sums.data());

  size_t pivot = 0;
  for (size_t i = 1; i < count; ++i) {
    if (sums[i] < sums[pivot]) pivot = i;
  }
  std::vector<PointId> order;
  order.reserve(64);
  const double* pivot_row = view.row(begin + pivot);
  for (size_t i = 0; i < count; ++i) {
    if (i == pivot || !DominatesRow(pivot_row, view.row(begin + i), m)) {
      order.push_back(static_cast<PointId>(begin + i));
    }
  }
  *comparisons += count - 1;

  // Sort the survivors by coordinate sum (a monotone preference function):
  // any dominator has a strictly smaller sum, or an equal sum only for
  // identical rows, so after the sort every row's dominators precede it.
  std::sort(order.begin(), order.end(), [&](PointId a, PointId b) {
    const double sa = sums[a - begin];
    const double sb = sums[b - begin];
    if (sa != sb) return sa < sb;
    return a < b;
  });

  SkylineWindow window(m);
  for (size_t k = 0; k < order.size(); ++k) {
    if (k % kCtxCheckRows == 0 && CtxExpired(ctx)) break;
    const PointId id = order[k];
    const double* p = view.row(id);
    const size_t dominator = FindDominatorRow(window.rows(), window.size(), m, p);
    if (dominator == window.size()) {
      *comparisons += window.size();
      window.Append(p, id);
    } else {
      *comparisons += dominator + 1;
    }
  }
  std::vector<PointId> skyline = std::move(window.ids());
  std::sort(skyline.begin(), skyline.end());
  return skyline;
}

/// Divide-and-conquer merge step: the union of both skylines with each
/// side's rows filtered against the *other* side's full skyline. Sound by
/// transitivity: any dominator of a surviving row is itself dominated by a
/// member of its own chunk's skyline, which then also dominates the row.
/// Duplicates across chunks never dominate each other, so all copies of a
/// skyline row survive (the global convention).
std::vector<PointId> MergeSkylines(const FlatMatrixView& view,
                                   const std::vector<PointId>& a,
                                   const std::vector<PointId>& b,
                                   uint64_t* comparisons) {
  const size_t m = view.m;
  SkylineWindow rows_a(m);
  SkylineWindow rows_b(m);
  for (PointId id : a) rows_a.Append(view.row(id), id);
  for (PointId id : b) rows_b.Append(view.row(id), id);

  std::vector<PointId> merged;
  merged.reserve(a.size() + b.size());
  for (size_t r = 0; r < a.size(); ++r) {
    const size_t dom = FindDominatorRow(rows_b.rows(), b.size(), m,
                                        rows_a.row(r));
    *comparisons += dom == b.size() ? b.size() : dom + 1;
    if (dom == b.size()) merged.push_back(a[r]);
  }
  for (size_t r = 0; r < b.size(); ++r) {
    const size_t dom = FindDominatorRow(rows_a.rows(), a.size(), m,
                                        rows_b.row(r));
    *comparisons += dom == a.size() ? a.size() : dom + 1;
    if (dom == a.size()) merged.push_back(b[r]);
  }
  return merged;
}

}  // namespace

FlatMatrixView FlatMatrixView::Of(const PointSet& points) {
  FlatMatrixView view;
  view.n = points.size();
  view.m = points.dims();
  view.stride = points.dims();
  view.data = points.empty() ? nullptr : points.data().data();
  return view;
}

FlatMatrixView FlatMatrixView::Of(const std::vector<double>& flat, size_t m) {
  assert(m > 0 && flat.size() % m == 0);
  FlatMatrixView view;
  view.data = flat.data();
  view.n = flat.size() / m;
  view.m = m;
  view.stride = m;
  return view;
}

void ComputeRowSums(const FlatMatrixView& view, double* out) {
  const size_t n = view.n;
  const size_t m = view.m;
  const size_t stride = view.stride;
  double acc[kSumRowBlock];
  for (size_t block = 0; block < n; block += kSumRowBlock) {
    const size_t bn = std::min(kSumRowBlock, n - block);
    std::fill_n(acc, bn, 0.0);
    // j ascending per row, the same addition order as a scalar row
    // accumulate, so the sums are bitwise identical in every layout.
    const double* base = view.data + block * stride;
    for (size_t j = 0; j < m; ++j) {
      for (size_t i = 0; i < bn; ++i) acc[i] += base[i * stride + j];
    }
    std::copy_n(acc, bn, out + block);
  }
}

std::vector<PointId> FlatSkylineBnl(const FlatMatrixView& view,
                                    Statistics* stats,
                                    const QueryContext* ctx) {
  const size_t m = view.m;
  SkylineWindow window(m);
  uint64_t comparisons = 0;
  for (size_t i = 0; i < view.n; ++i) {
    if (i % kCtxCheckRows == 0 && CtxExpired(ctx)) break;
    const double* p = view.row(i);
    bool dominated = false;
    size_t keep = 0;
    const size_t count = window.size();
    for (size_t w = 0; w < count; ++w) {
      ++comparisons;
      const DomRel rel = CompareRows(window.row(w), p, m);
      if (rel == DomRel::kDominates) {
        dominated = true;
        // Everything still in the window stays; compact the tail and stop.
        for (size_t rest = w; rest < count; ++rest) {
          window.MoveSlot(keep++, rest);
        }
        break;
      }
      if (rel != DomRel::kDominatedBy) {
        window.MoveSlot(keep++, w);  // the window row survives p
      }
      // rel == kDominatedBy: drop the window row.
    }
    window.Resize(keep);
    if (!dominated) {
      window.Append(p, static_cast<PointId>(i));
    }
  }
  if (stats != nullptr) {
    stats->Add(Ticker::kSkylineComparisons, comparisons);
  }
  std::vector<PointId> skyline = std::move(window.ids());
  std::sort(skyline.begin(), skyline.end());
  return skyline;
}

std::vector<PointId> FlatSkylineSfs(const FlatMatrixView& view,
                                    Statistics* stats,
                                    const QueryContext* ctx) {
  uint64_t comparisons = 0;
  std::vector<PointId> skyline =
      SfsOverRange(view, 0, view.n, &comparisons, ctx);
  if (stats != nullptr) {
    stats->Add(Ticker::kSkylineComparisons, comparisons);
  }
  return skyline;
}

std::vector<PointId> FlatSkylineParallelMerge(const FlatMatrixView& view,
                                              size_t num_threads,
                                              Statistics* stats,
                                              const QueryContext* ctx) {
  const size_t n = view.n;
  // The calling thread participates in ParallelFor, so the pool contributes
  // size() extra lanes.
  const size_t lanes = num_threads != 0
                           ? num_threads
                           : ThreadPool::Shared().size() + 1;
  // Auto mode only splits when every chunk is big enough to amortize the
  // fan-out; an explicit num_threads forces the partitioning (tests).
  const size_t chunk_cap =
      num_threads != 0 ? n : n / kMinParallelChunkRows;
  const size_t partitions = std::min(lanes, std::max<size_t>(chunk_cap, 1));
  if (partitions <= 1 || n == 0) return FlatSkylineSfs(view, stats, ctx);

  ThreadPool& pool = ThreadPool::Shared();
  std::vector<std::vector<PointId>> locals(partitions);
  std::vector<uint64_t> comparisons(partitions, 0);
  const size_t rows_per_chunk = (n + partitions - 1) / partitions;
  pool.ParallelFor(
      0, partitions, /*grain=*/1,
      [&](size_t begin, size_t end) {
        for (size_t c = begin; c < end; ++c) {
          const size_t lo = c * rows_per_chunk;
          const size_t hi = std::min(n, lo + rows_per_chunk);
          if (lo < hi) {
            locals[c] = SfsOverRange(view, lo, hi, &comparisons[c], ctx);
          }
        }
      },
      num_threads);

  // Tournament: pairwise merges per round, each round fanned out on the
  // pool, until one skyline remains. Between rounds is the natural poll
  // point -- within a merge the window sizes are already output-bounded.
  while (locals.size() > 1) {
    if (CtxExpired(ctx)) break;
    const size_t pairs = locals.size() / 2;
    std::vector<std::vector<PointId>> next(pairs + locals.size() % 2);
    pool.ParallelFor(
        0, pairs, /*grain=*/1,
        [&](size_t begin, size_t end) {
          for (size_t k = begin; k < end; ++k) {
            next[k] = MergeSkylines(view, locals[2 * k], locals[2 * k + 1],
                                    &comparisons[k]);
          }
        },
        num_threads);
    if (locals.size() % 2 != 0) next.back() = std::move(locals.back());
    locals = std::move(next);
  }

  if (stats != nullptr) {
    uint64_t total = 0;
    for (uint64_t c : comparisons) total += c;
    stats->Add(Ticker::kSkylineComparisons, total);
  }
  // After an aborted tournament locals may still hold several chunk
  // skylines; front() alone is returned, which is fine -- the caller's
  // post-check discards partial output anyway.
  std::vector<PointId> skyline = std::move(locals.front());
  std::sort(skyline.begin(), skyline.end());
  return skyline;
}

const char* FlatSkylinePathName(FlatSkylinePath path) {
  switch (path) {
    case FlatSkylinePath::kBnl:
      return "flat-bnl";
    case FlatSkylinePath::kSfs:
      return "flat-sfs";
    case FlatSkylinePath::kParallelMerge:
      return "flat-parallel-merge";
  }
  return "unknown";
}

bool FlatCapable(SkylineAlgorithm algorithm) {
  switch (algorithm) {
    case SkylineAlgorithm::kAuto:
    case SkylineAlgorithm::kBnl:
    case SkylineAlgorithm::kSfs:
    case SkylineAlgorithm::kParallelMerge:
      return true;
    case SkylineAlgorithm::kSortSweep2D:
    case SkylineAlgorithm::kDivideConquer:
    case SkylineAlgorithm::kBbs:  // needs a tree, not a flat view
      return false;
  }
  return false;
}

FlatSkylinePath ChooseFlatSkylinePath(SkylineAlgorithm algorithm, size_t n) {
  assert(FlatCapable(algorithm));
  switch (algorithm) {
    case SkylineAlgorithm::kBnl:
      return FlatSkylinePath::kBnl;
    case SkylineAlgorithm::kSfs:
      return FlatSkylinePath::kSfs;
    default:
      break;
  }
  // kAuto and kParallelMerge: the fan-out pays off once every lane gets a
  // full chunk and there is real hardware parallelism (a pool of >= 2
  // workers). The row-count gate comes first so that planning a small
  // input never starts the lazily spawned shared pool. kParallelMerge
  // resolves through the same gate so the reported path is always the one
  // that actually runs (FlatSkylineParallelMerge would fall back to a
  // single SFS below it anyway).
  if (n / kMinParallelChunkRows >= 2 && ThreadPool::Shared().size() >= 2) {
    return FlatSkylinePath::kParallelMerge;
  }
  return FlatSkylinePath::kSfs;
}

std::vector<PointId> FlatSkyline(const FlatMatrixView& view,
                                 FlatSkylinePath path, Statistics* stats,
                                 const QueryContext* ctx) {
  switch (path) {
    case FlatSkylinePath::kBnl:
      return FlatSkylineBnl(view, stats, ctx);
    case FlatSkylinePath::kSfs:
      return FlatSkylineSfs(view, stats, ctx);
    case FlatSkylinePath::kParallelMerge:
      return FlatSkylineParallelMerge(view, /*num_threads=*/0, stats, ctx);
  }
  return {};
}

}  // namespace eclipse
