// Skyline layers ("onion peeling"): layer 1 is the skyline, layer 2 the
// skyline of the rest, and so on. The substrate of several representative-
// skyline schemes discussed in the paper's related work (e.g. Lu et al.'s
// top-k representative skyline), and a useful diagnostic of how deep a
// dataset's dominance structure is.

#ifndef ECLIPSE_SKYLINE_LAYERS_H_
#define ECLIPSE_SKYLINE_LAYERS_H_

#include <vector>

#include "common/result.h"
#include "common/statistics.h"
#include "geometry/point.h"

namespace eclipse {

/// All layers (or the first `max_layers` when nonzero). Each layer's ids
/// are sorted ascending; layers are disjoint and their union is the whole
/// dataset when max_layers == 0.
Result<std::vector<std::vector<PointId>>> SkylineLayers(
    const PointSet& points, size_t max_layers = 0,
    Statistics* stats = nullptr);

/// The first `k` points encountered when reading layers in order (a simple
/// layered top-k: all of layer 1, then layer 2, ... truncated to k).
Result<std::vector<PointId>> LayeredTopK(const PointSet& points, size_t k);

}  // namespace eclipse

#endif  // ECLIPSE_SKYLINE_LAYERS_H_
