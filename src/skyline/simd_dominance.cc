#include "skyline/simd_dominance.h"

#include <atomic>

// The AVX2 tier is compiled only when the build opts in (ECLIPSE_SIMD, the
// default on x86-64 -- see CMakeLists.txt) AND the compiler supports
// per-function target attributes, so the rest of the library keeps the
// baseline ISA and an ECLIPSE_SIMD=OFF build is pure scalar.
#if defined(ECLIPSE_SIMD) && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define ECLIPSE_SIMD_AVX2 1
#include <immintrin.h>
#endif

namespace eclipse {

namespace {

// ------------------------------------------------------------- scalar tier
// The scalar tier IS the shared predicate from skyline/dominance.h: the
// fallback and the reference are the same code by construction.

bool DominatesScalarImpl(const double* a, const double* b, size_t m) {
  return DominatesRowScalar(a, b, m);
}

DomRel CompareScalarImpl(const double* a, const double* b, size_t m) {
  return CompareDominanceRowScalar(a, b, m);
}

size_t FindDominatorScalarImpl(const double* rows, size_t count, size_t m,
                               const double* p) {
  for (size_t r = 0; r < count; ++r) {
    if (DominatesRowScalar(rows + r * m, p, m)) return r;
  }
  return count;
}

// --------------------------------------------------------------- AVX2 tier
#ifdef ECLIPSE_SIMD_AVX2

// Early-exits at the first 4-lane block with a[j] > b[j]; the scalar code
// early-exits at the first such j. Both see the same components, so the
// boolean is identical. _CMP_GT_OQ / _CMP_LT_OQ are ordered-quiet: NaN
// compares false, exactly like the scalar `>` / `<`.
__attribute__((target("avx2"))) bool DominatesAvx2Impl(const double* a,
                                                       const double* b,
                                                       size_t m) {
  size_t j = 0;
  int lt_any = 0;
  for (; j + 4 <= m; j += 4) {
    const __m256d va = _mm256_loadu_pd(a + j);
    const __m256d vb = _mm256_loadu_pd(b + j);
    if (_mm256_movemask_pd(_mm256_cmp_pd(va, vb, _CMP_GT_OQ))) return false;
    lt_any |= _mm256_movemask_pd(_mm256_cmp_pd(va, vb, _CMP_LT_OQ));
  }
  bool strict = lt_any != 0;
  for (; j < m; ++j) {
    if (a[j] > b[j]) return false;
    if (a[j] < b[j]) strict = true;
  }
  return strict;
}

__attribute__((target("avx2"))) DomRel CompareAvx2Impl(const double* a,
                                                       const double* b,
                                                       size_t m) {
  size_t j = 0;
  int a_gt = 0;  // some a[j] > b[j]
  int a_lt = 0;  // some a[j] < b[j]
  for (; j + 4 <= m; j += 4) {
    const __m256d va = _mm256_loadu_pd(a + j);
    const __m256d vb = _mm256_loadu_pd(b + j);
    a_gt |= _mm256_movemask_pd(_mm256_cmp_pd(va, vb, _CMP_GT_OQ));
    a_lt |= _mm256_movemask_pd(_mm256_cmp_pd(va, vb, _CMP_LT_OQ));
    if (a_gt && a_lt) return DomRel::kIncomparable;
  }
  for (; j < m; ++j) {
    if (a[j] > b[j]) {
      a_gt = 1;
    } else if (a[j] < b[j]) {
      a_lt = 1;
    }
    if (a_gt && a_lt) return DomRel::kIncomparable;
  }
  if (!a_gt && !a_lt) return DomRel::kEqual;
  return a_gt ? DomRel::kDominatedBy : DomRel::kDominates;
}

__attribute__((target("avx2"))) size_t FindDominatorAvx2Impl(
    const double* rows, size_t count, size_t m, const double* p) {
  for (size_t r = 0; r < count; ++r) {
    if (DominatesAvx2Impl(rows + r * m, p, m)) return r;
  }
  return count;
}

#endif  // ECLIPSE_SIMD_AVX2

// ---------------------------------------------------------------- dispatch

struct KernelTable {
  SimdTier tier;
  bool (*dominates)(const double*, const double*, size_t);
  DomRel (*compare)(const double*, const double*, size_t);
  size_t (*find_dominator)(const double*, size_t, size_t, const double*);
};

constexpr KernelTable kScalarTable = {SimdTier::kScalar, DominatesScalarImpl,
                                      CompareScalarImpl,
                                      FindDominatorScalarImpl};

#ifdef ECLIPSE_SIMD_AVX2
constexpr KernelTable kAvx2Table = {SimdTier::kAvx2, DominatesAvx2Impl,
                                    CompareAvx2Impl, FindDominatorAvx2Impl};
#endif

bool Avx2Available() {
#ifdef ECLIPSE_SIMD_AVX2
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

const KernelTable* TableFor(SimdTier tier) {
#ifdef ECLIPSE_SIMD_AVX2
  if (tier == SimdTier::kAvx2) return &kAvx2Table;
#else
  (void)tier;
#endif
  return &kScalarTable;
}

const KernelTable* DetectTable() {
  return Avx2Available() ? TableFor(SimdTier::kAvx2) : &kScalarTable;
}

// Constant-initialized; resolved on first use (racing detections all store
// the same pointer). Relaxed loads compile to plain loads on x86.
std::atomic<const KernelTable*> g_active{nullptr};

const KernelTable* Active() {
  const KernelTable* table = g_active.load(std::memory_order_relaxed);
  if (table == nullptr) {
    table = DetectTable();
    g_active.store(table, std::memory_order_relaxed);
  }
  return table;
}

}  // namespace

const char* SimdTierName(SimdTier tier) {
  switch (tier) {
    case SimdTier::kScalar:
      return "scalar";
    case SimdTier::kAvx2:
      return "avx2";
  }
  return "unknown";
}

SimdTier ActiveSimdTier() { return Active()->tier; }

std::vector<SimdTier> AvailableSimdTiers() {
  std::vector<SimdTier> tiers = {SimdTier::kScalar};
  if (Avx2Available()) tiers.push_back(SimdTier::kAvx2);
  return tiers;
}

bool SetSimdTier(SimdTier tier) {
  if (tier == SimdTier::kAvx2 && !Avx2Available()) return false;
  g_active.store(TableFor(tier), std::memory_order_relaxed);
  return true;
}

void ResetSimdTier() { g_active.store(DetectTable(), std::memory_order_relaxed); }

bool DominatesRow(const double* a, const double* b, size_t m) {
  return Active()->dominates(a, b, m);
}

DomRel CompareRows(const double* a, const double* b, size_t m) {
  return Active()->compare(a, b, m);
}

size_t FindDominatorRow(const double* rows, size_t count, size_t m,
                        const double* p) {
  return Active()->find_dominator(rows, count, m, p);
}

}  // namespace eclipse
