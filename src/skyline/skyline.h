// Skyline (minima-set) computation: the substrate under TRAN and the
// index-build pipeline. All entry points return ids sorted ascending so
// results compare exactly across algorithms.

#ifndef ECLIPSE_SKYLINE_SKYLINE_H_
#define ECLIPSE_SKYLINE_SKYLINE_H_

#include <vector>

#include "common/result.h"
#include "common/statistics.h"
#include "geometry/point.h"

namespace eclipse {

enum class SkylineAlgorithm {
  /// Picks sort-sweep for d == 2; otherwise the flat SFS, upgraded to the
  /// parallel partition/merge skyline for large inputs on a multi-lane pool.
  kAuto,
  /// Block-nested-loops, O(n^2) worst case; the classic baseline.
  kBnl,
  /// Sort-filter-skyline: presort by coordinate sum so every dominator
  /// precedes its victims, then scan against accepted points. O(n log n +
  /// n*s) where s is the skyline size.
  kSfs,
  /// 2D sort + sweep, O(n log n). Only valid for d == 2.
  kSortSweep2D,
  /// Bentley/KLP multidimensional divide & conquer ("ECDF algorithm"),
  /// O(n log^{d-2} n) for d >= 3.
  kDivideConquer,
  /// Partition -> local SFS skylines -> pairwise tournament merge on the
  /// shared thread pool (skyline/flat_skyline.h).
  kParallelMerge,
  /// Branch-and-bound skyline over a packed R-tree (skyline/bbs.h):
  /// output-sensitive, visiting only nodes an accepted point does not
  /// dominate. ComputeSkyline builds a throwaway tree; callers holding a
  /// prebuilt tree (EclipseEngine's warm path) invoke BbsSkyline /
  /// BbsEclipse directly.
  kBbs,
};

/// Computes the skyline (points not properly dominated by any other point).
/// Exact duplicates of a skyline point are all reported. kBnl / kSfs /
/// kParallelMerge run through the zero-copy SIMD flat-matrix kernels of
/// skyline/flat_skyline.h over the PointSet's own storage; the scalar
/// per-Point entry points below are kept as independent references for
/// differential testing and return identical id sets.
Result<std::vector<PointId>> ComputeSkyline(
    const PointSet& points, SkylineAlgorithm algorithm = SkylineAlgorithm::kAuto,
    Statistics* stats = nullptr);

/// The backend ComputeSkyline runs for (algorithm, n, dims), as an
/// Explain-facing name ("flat-sfs", "sort-sweep-2d", ...). Single source of
/// truth for plan observability -- keep in lockstep with ComputeSkyline's
/// routing above.
const char* ComputeSkylinePathName(SkylineAlgorithm algorithm, size_t n,
                                   size_t dims);

/// O(n^2 d) oracle used by tests to validate the fast algorithms.
std::vector<PointId> NaiveSkyline(const PointSet& points);

/// True iff `ids` is exactly the skyline of `points` (as a set).
bool VerifySkyline(const PointSet& points, const std::vector<PointId>& ids);

// Individual algorithm entry points (ids returned sorted ascending).
std::vector<PointId> SkylineBnl(const PointSet& points,
                                Statistics* stats = nullptr);
std::vector<PointId> SkylineSfs(const PointSet& points,
                                Statistics* stats = nullptr);
Result<std::vector<PointId>> SkylineSortSweep2D(const PointSet& points,
                                                Statistics* stats = nullptr);
std::vector<PointId> SkylineDivideConquer(const PointSet& points,
                                          Statistics* stats = nullptr);

}  // namespace eclipse

#endif  // ECLIPSE_SKYLINE_SKYLINE_H_
