// Skyline (minima-set) computation: the substrate under TRAN and the
// index-build pipeline. All entry points return ids sorted ascending so
// results compare exactly across algorithms.

#ifndef ECLIPSE_SKYLINE_SKYLINE_H_
#define ECLIPSE_SKYLINE_SKYLINE_H_

#include <vector>

#include "common/result.h"
#include "common/statistics.h"
#include "geometry/point.h"

namespace eclipse {

enum class SkylineAlgorithm {
  /// Picks sort-sweep for d == 2, SFS otherwise.
  kAuto,
  /// Block-nested-loops, O(n^2) worst case; the classic baseline.
  kBnl,
  /// Sort-filter-skyline: presort by coordinate sum so every dominator
  /// precedes its victims, then scan against accepted points. O(n log n +
  /// n*s) where s is the skyline size.
  kSfs,
  /// 2D sort + sweep, O(n log n). Only valid for d == 2.
  kSortSweep2D,
  /// Bentley/KLP multidimensional divide & conquer ("ECDF algorithm"),
  /// O(n log^{d-2} n) for d >= 3.
  kDivideConquer,
};

/// Computes the skyline (points not properly dominated by any other point).
/// Exact duplicates of a skyline point are all reported.
Result<std::vector<PointId>> ComputeSkyline(
    const PointSet& points, SkylineAlgorithm algorithm = SkylineAlgorithm::kAuto,
    Statistics* stats = nullptr);

/// O(n^2 d) oracle used by tests to validate the fast algorithms.
std::vector<PointId> NaiveSkyline(const PointSet& points);

/// True iff `ids` is exactly the skyline of `points` (as a set).
bool VerifySkyline(const PointSet& points, const std::vector<PointId>& ids);

// Individual algorithm entry points (ids returned sorted ascending).
std::vector<PointId> SkylineBnl(const PointSet& points,
                                Statistics* stats = nullptr);
std::vector<PointId> SkylineSfs(const PointSet& points,
                                Statistics* stats = nullptr);
Result<std::vector<PointId>> SkylineSortSweep2D(const PointSet& points,
                                                Statistics* stats = nullptr);
std::vector<PointId> SkylineDivideConquer(const PointSet& points,
                                          Statistics* stats = nullptr);

}  // namespace eclipse

#endif  // ECLIPSE_SKYLINE_SKYLINE_H_
