#include "skyline/dominance.h"

#include <cassert>

namespace eclipse {

bool WeakDominates(std::span<const double> a, std::span<const double> b) {
  return WeakDominatesPrefix(a, b, a.size());
}

bool Dominates(std::span<const double> a, std::span<const double> b) {
  return DominatesPrefix(a, b, a.size());
}

bool WeakDominatesPrefix(std::span<const double> a, std::span<const double> b,
                         size_t k) {
  assert(a.size() >= k && b.size() >= k);
  for (size_t j = 0; j < k; ++j) {
    if (a[j] > b[j]) return false;
  }
  return true;
}

bool DominatesPrefix(std::span<const double> a, std::span<const double> b,
                     size_t k) {
  assert(a.size() >= k && b.size() >= k);
  bool strict = false;
  for (size_t j = 0; j < k; ++j) {
    if (a[j] > b[j]) return false;
    if (a[j] < b[j]) strict = true;
  }
  return strict;
}

DomRel CompareDominance(std::span<const double> a, std::span<const double> b) {
  bool a_le = true;
  bool b_le = true;
  bool equal = true;
  for (size_t j = 0; j < a.size(); ++j) {
    if (a[j] < b[j]) {
      b_le = false;
      equal = false;
    } else if (a[j] > b[j]) {
      a_le = false;
      equal = false;
    }
    if (!a_le && !b_le) return DomRel::kIncomparable;
  }
  if (equal) return DomRel::kEqual;
  return a_le ? DomRel::kDominates : DomRel::kDominatedBy;
}

}  // namespace eclipse
