#include "skyline/dominance.h"

#include <cassert>

namespace eclipse {

bool WeakDominates(std::span<const double> a, std::span<const double> b) {
  return WeakDominatesPrefix(a, b, a.size());
}

bool Dominates(std::span<const double> a, std::span<const double> b) {
  return DominatesPrefix(a, b, a.size());
}

bool WeakDominatesPrefix(std::span<const double> a, std::span<const double> b,
                         size_t k) {
  assert(a.size() >= k && b.size() >= k);
  return WeakDominatesRowScalar(a.data(), b.data(), k);
}

bool DominatesPrefix(std::span<const double> a, std::span<const double> b,
                     size_t k) {
  assert(a.size() >= k && b.size() >= k);
  return DominatesRowScalar(a.data(), b.data(), k);
}

DomRel CompareDominance(std::span<const double> a, std::span<const double> b) {
  return CompareDominanceRowScalar(a.data(), b.data(), a.size());
}

}  // namespace eclipse
