#include <algorithm>
#include <numeric>

#include "common/strings.h"
#include "skyline/skyline.h"

namespace eclipse {

Result<std::vector<PointId>> SkylineSortSweep2D(const PointSet& points,
                                                Statistics* stats) {
  if (points.dims() != 2) {
    return Status::InvalidArgument(StrFormat(
        "SkylineSortSweep2D requires d == 2, got d == %zu", points.dims()));
  }
  const size_t n = points.size();
  std::vector<PointId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](PointId a, PointId b) {
    if (points.at(a, 0) != points.at(b, 0))
      return points.at(a, 0) < points.at(b, 0);
    if (points.at(a, 1) != points.at(b, 1))
      return points.at(a, 1) < points.at(b, 1);
    return a < b;
  });

  // Sweep x-groups in increasing x. A point survives iff it has the minimal
  // y within its x-group and that y is strictly below every y seen at
  // smaller x (equal y at smaller x dominates it; an exact duplicate within
  // the group does not).
  std::vector<PointId> skyline;
  uint64_t comparisons = 0;
  double best_y = std::numeric_limits<double>::infinity();
  size_t i = 0;
  while (i < n) {
    size_t group_end = i;
    const double x = points.at(order[i], 0);
    while (group_end < n && points.at(order[group_end], 0) == x) {
      ++group_end;
    }
    const double group_min_y = points.at(order[i], 1);
    ++comparisons;
    if (group_min_y < best_y) {
      for (size_t k = i; k < group_end; ++k) {
        if (points.at(order[k], 1) != group_min_y) break;
        skyline.push_back(order[k]);
      }
      best_y = group_min_y;
    }
    i = group_end;
  }
  if (stats != nullptr) {
    stats->Add(Ticker::kSkylineComparisons, comparisons);
  }
  std::sort(skyline.begin(), skyline.end());
  return skyline;
}

}  // namespace eclipse
