#include <algorithm>

#include "skyline/dominance.h"
#include "skyline/skyline.h"

namespace eclipse {

std::vector<PointId> SkylineBnl(const PointSet& points, Statistics* stats) {
  std::vector<PointId> window;
  uint64_t comparisons = 0;
  for (PointId i = 0; i < points.size(); ++i) {
    auto p = points[i];
    bool dominated = false;
    size_t keep = 0;
    for (size_t w = 0; w < window.size(); ++w) {
      auto q = points[window[w]];
      ++comparisons;
      DomRel rel = CompareDominance(q, p);
      if (rel == DomRel::kDominates) {
        dominated = true;
        // Everything still in the window stays; copy the tail and stop.
        for (size_t rest = w; rest < window.size(); ++rest) {
          window[keep++] = window[rest];
        }
        break;
      }
      if (rel != DomRel::kDominatedBy) {
        window[keep++] = window[w];  // q survives p
      }
      // rel == kDominatedBy: drop q from the window.
    }
    window.resize(keep);
    if (!dominated) {
      window.push_back(i);
    }
  }
  if (stats != nullptr) {
    stats->Add(Ticker::kSkylineComparisons, comparisons);
  }
  std::sort(window.begin(), window.end());
  return window;
}

}  // namespace eclipse
