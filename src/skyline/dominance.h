// Pointwise (skyline) dominance. Smaller is better in every dimension
// throughout this library ("distance to the query point at the origin").
//
// The scalar predicate lives here ONCE, as inline helpers over raw rows:
// every dominance test in the library -- BNL/SFS windows, BASE's quadratic
// pass, CornerKernel::Dominates, and the SIMD kernel's scalar fallback
// (skyline/simd_dominance.h) -- routes through DominanceAccumulator /
// DominatesRowScalar, so there is exactly one definition of "a dominates b"
// to keep bitwise-consistent across layouts and instruction sets.

#ifndef ECLIPSE_SKYLINE_DOMINANCE_H_
#define ECLIPSE_SKYLINE_DOMINANCE_H_

#include <cstddef>
#include <span>

namespace eclipse {

/// The streaming core of the scalar predicate, for callers that produce
/// components on the fly (CornerKernel::Dominates computes each corner
/// score pair lazily so it can stop at the first violated corner).
class DominanceAccumulator {
 public:
  /// Feeds one (a_j, b_j) component pair. Returns false iff a_j > b_j,
  /// i.e. a can no longer dominate b; the caller should stop immediately.
  bool Observe(double aj, double bj) {
    if (aj > bj) return false;
    if (aj < bj) strict_ = true;
    return true;
  }
  /// a < b was observed in some fed component.
  bool strict() const { return strict_; }

 private:
  bool strict_ = false;
};

/// a[j] <= b[j] for all j in [0, k).
inline bool WeakDominatesRowScalar(const double* a, const double* b,
                                   size_t k) {
  for (size_t j = 0; j < k; ++j) {
    if (a[j] > b[j]) return false;
  }
  return true;
}

/// Proper skyline dominance over raw rows: a <= b componentwise and a != b.
/// Exact duplicates never dominate each other, so all copies of a skyline
/// point are reported (the standard convention).
inline bool DominatesRowScalar(const double* a, const double* b, size_t k) {
  DominanceAccumulator acc;
  for (size_t j = 0; j < k; ++j) {
    if (!acc.Observe(a[j], b[j])) return false;
  }
  return acc.strict();
}

/// Relationship of a pair under proper dominance.
enum class DomRel {
  kDominates,    // a dominates b
  kDominatedBy,  // b dominates a
  kEqual,        // identical rows
  kIncomparable,
};

inline DomRel CompareDominanceRowScalar(const double* a, const double* b,
                                        size_t k) {
  bool a_le = true;
  bool b_le = true;
  bool equal = true;
  for (size_t j = 0; j < k; ++j) {
    if (a[j] < b[j]) {
      b_le = false;
      equal = false;
    } else if (a[j] > b[j]) {
      a_le = false;
      equal = false;
    }
    if (!a_le && !b_le) return DomRel::kIncomparable;
  }
  if (equal) return DomRel::kEqual;
  return a_le ? DomRel::kDominates : DomRel::kDominatedBy;
}

// Span-based wrappers (the historical API; all delegate to the row helpers
// above).

/// a[j] <= b[j] for all j (allows a == b).
bool WeakDominates(std::span<const double> a, std::span<const double> b);

/// Proper skyline dominance: a <= b componentwise and a != b.
bool Dominates(std::span<const double> a, std::span<const double> b);

/// Like WeakDominates/Dominates restricted to the first k dimensions.
bool WeakDominatesPrefix(std::span<const double> a, std::span<const double> b,
                         size_t k);
bool DominatesPrefix(std::span<const double> a, std::span<const double> b,
                     size_t k);

DomRel CompareDominance(std::span<const double> a, std::span<const double> b);

}  // namespace eclipse

#endif  // ECLIPSE_SKYLINE_DOMINANCE_H_
