// Pointwise (skyline) dominance. Smaller is better in every dimension
// throughout this library ("distance to the query point at the origin").

#ifndef ECLIPSE_SKYLINE_DOMINANCE_H_
#define ECLIPSE_SKYLINE_DOMINANCE_H_

#include <span>

namespace eclipse {

/// a[j] <= b[j] for all j (allows a == b).
bool WeakDominates(std::span<const double> a, std::span<const double> b);

/// Proper skyline dominance: a <= b componentwise and a != b. Exact
/// duplicates never dominate each other, so all copies of a skyline point
/// are reported (the standard convention).
bool Dominates(std::span<const double> a, std::span<const double> b);

/// Like WeakDominates/Dominates restricted to the first k dimensions.
bool WeakDominatesPrefix(std::span<const double> a, std::span<const double> b,
                         size_t k);
bool DominatesPrefix(std::span<const double> a, std::span<const double> b,
                     size_t k);

/// Relationship of a pair under proper dominance.
enum class DomRel {
  kDominates,    // a dominates b
  kDominatedBy,  // b dominates a
  kEqual,        // identical rows
  kIncomparable,
};

DomRel CompareDominance(std::span<const double> a, std::span<const double> b);

}  // namespace eclipse

#endif  // ECLIPSE_SKYLINE_DOMINANCE_H_
