// 4-wide double dominance kernels for the flat-matrix skyline hot path.
//
// The sorted-filter skylines (SaLSa / SFS line of work) are memory-bound on
// dominance tests: for each candidate row the inner loop streams previously
// accepted rows and asks "does any of them dominate the candidate?". These
// kernels answer that question 4 doubles per instruction with AVX2, while
// guaranteeing the EXACT accept/reject decisions of the scalar predicate in
// skyline/dominance.h (the scalar fallback *is* that predicate):
//
//   * scalar:  early-exit at the first j with a[j] > b[j];
//   * AVX2:    early-exit at the first 4-lane block containing such a j.
//
// Both orderings see the same components and compute the same boolean, and
// ordered-quiet compares treat NaN exactly like the scalar `>` / `<` (both
// false), so results are decision-identical on any input.
//
// Dispatch is two-level: the ECLIPSE_SIMD compile definition gates whether
// the AVX2 translation unit is compiled at all (per-function
// `__attribute__((target("avx2")))`, so the rest of the library keeps the
// baseline ISA), and a CPUID probe (`__builtin_cpu_supports`) at startup
// picks the widest tier the machine actually has. Tests can pin a tier with
// SetSimdTier to run the differential suite at every dispatch level.

#ifndef ECLIPSE_SKYLINE_SIMD_DOMINANCE_H_
#define ECLIPSE_SKYLINE_SIMD_DOMINANCE_H_

#include <cstddef>
#include <vector>

#include "skyline/dominance.h"

namespace eclipse {

enum class SimdTier {
  kScalar = 0,  // the shared scalar predicate (always available)
  kAvx2 = 1,    // 4 x double AVX2 blocks (x86-64, ECLIPSE_SIMD builds)
};

const char* SimdTierName(SimdTier tier);

/// The tier the dominance kernels currently dispatch to. Defaults to the
/// widest tier supported by both the build (ECLIPSE_SIMD) and the CPU.
SimdTier ActiveSimdTier();

/// Every tier this build+CPU can run (kScalar always; useful for tests that
/// must cover each dispatch level).
std::vector<SimdTier> AvailableSimdTiers();

/// Pins dispatch to `tier`; false (and no change) if the tier is
/// unavailable. Intended for tests and benchmarks -- not thread-safe
/// against concurrent queries.
bool SetSimdTier(SimdTier tier);

/// Restores the default (widest available) tier.
void ResetSimdTier();

/// Proper dominance over contiguous rows: a <= b componentwise, a != b.
/// Decision-identical to DominatesRowScalar at every tier.
bool DominatesRow(const double* a, const double* b, size_t m);

/// Three-way comparison; decision-identical to CompareDominanceRowScalar.
DomRel CompareRows(const double* a, const double* b, size_t m);

/// The SFS inner loop as one call: index of the first of `count` contiguous
/// m-wide rows (rows + r*m) that properly dominates p, or `count` when none
/// does. One dispatch per candidate instead of one per pair.
size_t FindDominatorRow(const double* rows, size_t count, size_t m,
                        const double* p);

}  // namespace eclipse

#endif  // ECLIPSE_SKYLINE_SIMD_DOMINANCE_H_
