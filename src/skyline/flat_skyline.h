// Skyline over a borrowed flat score matrix -- the fused zero-copy hot path.
//
// Every eclipse query reduces to a skyline over the corner-score embedding
// (paper Theorem 5): CornerKernel::EmbedAll produces a dense n x m score
// matrix, and copying it into an AoS PointSet just to run a scalar skyline
// threw away the layout the kernel worked to produce. These entry points
// consume the matrix (or any strided row-major view, including a PointSet's
// own storage) in place:
//
//   * FlatSkylineBnl           -- block-nested-loops over a compact window,
//   * FlatSkylineSfs           -- sort-filter-skyline; sort keys (row sums)
//                                 computed columnwise by ComputeRowSums, a
//                                 SaLSa-style min-sum pivot pre-filter that
//                                 prunes dominated rows before the sort,
//                                 and accepted rows kept in a dense window
//                                 so the inner loop streams contiguous
//                                 memory,
//   * FlatSkylineParallelMerge -- partition rows -> local SFS skylines ->
//                                 pairwise tournament merge, all stages on
//                                 ThreadPool::Shared().
//
// All inner loops test dominance through the dispatching SIMD kernel
// (skyline/simd_dominance.h), and all entry points return the same id set,
// sorted ascending, as the PointSet algorithms in skyline/skyline.h -- the
// skyline is a well-defined set and every kernel tier makes decision-
// identical accept/reject calls, so results are interchangeable bit for bit.

#ifndef ECLIPSE_SKYLINE_FLAT_SKYLINE_H_
#define ECLIPSE_SKYLINE_FLAT_SKYLINE_H_

#include <vector>

#include "common/query_context.h"
#include "common/statistics.h"
#include "geometry/point.h"
#include "skyline/skyline.h"

namespace eclipse {

/// A borrowed, read-only, row-major matrix: row i spans
/// data[i*stride .. i*stride + m). stride >= m lets a view walk a subset of
/// a wider matrix's columns. The view does not own the data. Coordinates
/// must be NaN-free, like every dataset in this library (the SFS sort key
/// comparator requires a total order over row sums).
struct FlatMatrixView {
  const double* data = nullptr;
  size_t n = 0;       // rows
  size_t m = 0;       // compared columns per row
  size_t stride = 0;  // doubles between consecutive row starts (>= m)

  const double* row(size_t i) const { return data + i * stride; }

  /// Zero-copy view of a PointSet's flat storage (stride == dims).
  static FlatMatrixView Of(const PointSet& points);
  /// View of a flat row-major buffer with m columns (flat.size() % m == 0).
  static FlatMatrixView Of(const std::vector<double>& flat, size_t m);
};

/// out[i] = row i's coordinate sum, accumulated column-by-column over a
/// cache-resident block of rows -- the same j-ascending addition order as a
/// scalar row accumulate, so the keys are bitwise identical to the
/// per-row std::accumulate they replace (and shared with SkylineSfs).
void ComputeRowSums(const FlatMatrixView& view, double* out);

// Entry points. Ids are row indices into the view, sorted ascending;
// `stats` ticks kSkylineComparisons like the PointSet algorithms.
//
// Cooperative cancellation: when `ctx` is non-null the inner loops poll it
// every few hundred rows and bail out early, returning a PARTIAL id set.
// The kernels cannot change their return type without disturbing every hot
// call site, so the contract is: callers that pass a ctx must re-check it
// after the kernel returns and discard the ids on a non-OK status (every
// engine-level caller does; a null ctx keeps the exact legacy behavior).
std::vector<PointId> FlatSkylineBnl(const FlatMatrixView& view,
                                    Statistics* stats = nullptr,
                                    const QueryContext* ctx = nullptr);
std::vector<PointId> FlatSkylineSfs(const FlatMatrixView& view,
                                    Statistics* stats = nullptr,
                                    const QueryContext* ctx = nullptr);

/// Partition -> local SFS skyline per chunk -> pairwise tournament merge,
/// with chunks and merges dispatched onto ThreadPool::Shared().
/// num_threads == 0 sizes the partitioning to the pool (falling back to a
/// single SFS when the input is too small to be worth splitting); an
/// explicit num_threads forces that many partitions (tests use this to
/// exercise the merge on small inputs).
std::vector<PointId> FlatSkylineParallelMerge(const FlatMatrixView& view,
                                              size_t num_threads = 0,
                                              Statistics* stats = nullptr,
                                              const QueryContext* ctx =
                                                  nullptr);

/// The concrete flat path a SkylineAlgorithm resolves to at this input
/// size. Single source of truth for EclipseCornerSkyline's routing and the
/// engine's Explain.
enum class FlatSkylinePath { kBnl, kSfs, kParallelMerge };

const char* FlatSkylinePathName(FlatSkylinePath path);

/// True iff `algorithm` can run directly on a flat view (kSortSweep2D and
/// kDivideConquer still need a PointSet).
bool FlatCapable(SkylineAlgorithm algorithm);

/// Routing: kBnl / kSfs map to themselves; kAuto and kParallelMerge pick
/// the parallel merge when the input is large enough to amortize the
/// fan-out and the shared pool has >= 2 workers, SFS otherwise -- so the
/// chosen path is always the one that actually runs. Precondition:
/// FlatCapable(algorithm).
FlatSkylinePath ChooseFlatSkylinePath(SkylineAlgorithm algorithm, size_t n);

/// Runs the chosen path over the view.
std::vector<PointId> FlatSkyline(const FlatMatrixView& view,
                                 FlatSkylinePath path,
                                 Statistics* stats = nullptr,
                                 const QueryContext* ctx = nullptr);

}  // namespace eclipse

#endif  // ECLIPSE_SKYLINE_FLAT_SKYLINE_H_
