// BBS: branch-and-bound skyline over a packed R-tree -- the output-
// sensitive query path.
//
// The classic tree-based skyline (Papadias et al.'s BBS, via the skyline
// survey in PAPERS.md) visits index nodes best-first by the minimum
// coordinate sum of their MBR low corner and prunes every node whose low
// corner is properly dominated by an already-accepted point. Cost is
// proportional to the nodes that can contain skyline members -- typically
// O(s log n) node visits for an s-point skyline -- instead of the O(n m)
// full scan the flat kernels pay.
//
// The eclipse generalization (BbsEclipse) runs the SAME traversal over a
// tree built in RAW data space, bounding in corner-score embedding space:
// every embedding component is a nonnegative-weighted sum of raw
// coordinates (or a raw coordinate, for unbounded ratio dims), hence
// monotone in each coordinate, so
//
//     embed(node.lo) <= embed(p)   componentwise, for every p in the node.
//
// That makes embed(node.lo) an admissible componentwise lower bound: its
// sum orders the best-first heap, and an accepted embedding that PROPERLY
// dominates it properly dominates every point in the node (a <= e(lo) <=
// e(p) with a != e(lo) forces a != e(p)), so the node is safely pruned.
// Pruning only on proper dominance keeps exact duplicates of skyline
// points in the result, matching the flat kernels' convention. Because a
// proper dominator has a strictly smaller embedding sum, every potential
// dominator of a point is popped (or pruned by something that also
// dominates the point) before the point itself -- accepted points are
// final, and the returned ids are exactly EclipseCornerSkyline's.
//
// Building the tree in raw space is what makes it reusable: it is query-
// independent (one tree serves every RatioBox, bounded or not) and
// shareable with the kNN path. Constrained skylines come for free: an
// optional raw-space Box restricts the traversal to intersecting nodes and
// contained points.
//
// Dominance tests run through the dispatching SIMD kernel
// (skyline/simd_dominance.h) against a dense accepted-row window, so
// accept/reject decisions are decision-identical to the flat kernels at
// every tier.

#ifndef ECLIPSE_SKYLINE_BBS_H_
#define ECLIPSE_SKYLINE_BBS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/query_context.h"
#include "common/result.h"
#include "common/statistics.h"
#include "core/ratio_box.h"
#include "geometry/box.h"
#include "geometry/point.h"
#include "index/packed_rtree.h"

namespace eclipse {

/// Per-query BBS observability (Explain / bench / CLI).
struct BbsStats {
  /// Tree nodes expanded (popped off the heap and not pruned).
  uint64_t nodes_visited = 0;
  /// Leaves among them whose points were scanned.
  uint64_t leaves_scanned = 0;
  /// Nodes discarded because an accepted point dominates their low-corner
  /// embedding (at push or pop time).
  uint64_t nodes_pruned = 0;
  /// Points discarded by dominance (at push or pop time).
  uint64_t points_pruned = 0;
  uint64_t heap_pushes = 0;
  uint64_t points_accepted = 0;
  /// Rows skipped by the caller's tombstone mask (erased from the live
  /// dataset but still indexed by a carried tree).
  uint64_t tombstones_skipped = 0;

  BbsStats& operator+=(const BbsStats& other) {
    nodes_visited += other.nodes_visited;
    leaves_scanned += other.leaves_scanned;
    nodes_pruned += other.nodes_pruned;
    points_pruned += other.points_pruned;
    heap_pushes += other.heap_pushes;
    points_accepted += other.points_accepted;
    tombstones_skipped += other.tombstones_skipped;
    return *this;
  }
};

/// The raw-space skyline of `points` via BBS over `tree` (built over the
/// same rows; the tree may index a PREFIX of the rows, in which case the
/// skyline of that prefix is returned -- the epoch-carry contract). With
/// `constraint`, the constrained skyline: minima among the points inside
/// the closed raw-space box. A non-empty `tombstones` mask (one byte per
/// tree row, 1 = dead) excludes erased rows from the answer without
/// rebuilding the tree: dead rows never enter the accepted set, and node
/// MBRs computed with them stay admissible (merely looser), so the result
/// is exactly the skyline of the live rows. Ids ascending; identical to
/// the flat kernels' id sets on the same rows. Ticks kIndexNodesVisited /
/// kIndexLeavesScanned / kSkylineComparisons on `stats`.
/// Both entry points poll `ctx` (when non-null) every few dozen heap pops
/// -- BBS is naturally interruptible between pops -- and return
/// Status::DeadlineExceeded / Cancelled instead of a partial answer.
Result<std::vector<PointId>> BbsSkyline(
    const PointSet& points, const PackedRTree& tree,
    const Box* constraint = nullptr, Statistics* stats = nullptr,
    BbsStats* bbs = nullptr, std::span<const uint8_t> tombstones = {},
    const QueryContext* ctx = nullptr);

/// The eclipse set of `box` (skyline of the corner-score embedding, paper
/// Theorem 5) via BBS over the raw-space `tree`. Handles bounded, unbounded
/// and mixed boxes exactly like EclipseCornerSkyline and returns the
/// identical id set; `max_corner_dims` guards the 2^|FreeDims| embedding
/// blow-up the same way (ResourceExhausted). Also ticks
/// kCornerScoreEvaluations for the lazy low-corner / point embeddings.
/// `tombstones` as in BbsSkyline.
Result<std::vector<PointId>> BbsEclipse(
    const PointSet& points, const PackedRTree& tree, const RatioBox& box,
    size_t max_corner_dims = 20, const Box* constraint = nullptr,
    Statistics* stats = nullptr, BbsStats* bbs = nullptr,
    std::span<const uint8_t> tombstones = {},
    const QueryContext* ctx = nullptr);

}  // namespace eclipse

#endif  // ECLIPSE_SKYLINE_BBS_H_
