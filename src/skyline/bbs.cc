#include "skyline/bbs.h"

#include <algorithm>
#include <queue>
#include <span>

#include "common/strings.h"
#include "core/corner_kernel.h"
#include "skyline/simd_dominance.h"

namespace eclipse {

namespace {

/// The embedding the traversal bounds in: the corner-score kernel for
/// eclipse queries, the identity for raw-space skylines. Both are monotone
/// componentwise in the raw coordinates, which is the only property the
/// low-corner bound needs.
struct Embedder {
  const CornerKernel* kernel;  // nullptr = identity
  size_t d;
  size_t m;

  void Embed(const double* p, double* out) const {
    if (kernel != nullptr) {
      kernel->EmbedInto(std::span<const double>(p, d), out);
    } else {
      std::copy_n(p, d, out);
    }
  }
};

/// Heap pops between deadline/cancel polls.
constexpr uint64_t kCtxCheckPops = 64;

Result<std::vector<PointId>> BbsCore(const PointSet& points,
                                     const PackedRTree& tree,
                                     const Embedder& e, const Box* constraint,
                                     Statistics* stats, BbsStats* bbs_out,
                                     std::span<const uint8_t> tombstones,
                                     const QueryContext* ctx) {
  if (tree.dims() != points.dims()) {
    return Status::InvalidArgument(
        StrFormat("BBS: tree indexes %zu-d rows, dataset is %zu-d",
                  tree.dims(), points.dims()));
  }
  if (tree.size() > points.size()) {
    return Status::InvalidArgument(
        StrFormat("BBS: tree indexes %zu rows but the dataset has %zu",
                  tree.size(), points.size()));
  }
  if (constraint != nullptr && constraint->dims() != points.dims()) {
    return Status::InvalidArgument("BBS: constraint box dims mismatch");
  }
  if (!tombstones.empty() && tombstones.size() != tree.size()) {
    return Status::InvalidArgument(
        StrFormat("BBS: tombstone mask covers %zu rows, tree indexes %zu",
                  tombstones.size(), tree.size()));
  }

  BbsStats bbs;
  uint64_t comparisons = 0;
  uint64_t embeddings = 0;
  std::vector<PointId> out;
  const size_t m = e.m;

  if (tree.size() > 0) {
    // Embeddings of every queued heap entry, m doubles per slot; accepted
    // rows move into a dense window the SIMD inner loop streams.
    std::vector<double> pool;
    std::vector<double> accepted;
    std::vector<double> tmp(m);

    struct Entry {
      double bound;
      uint32_t index;  // node id, or row id for points
      uint32_t slot;   // row in the embedding pool
      bool is_point;
    };
    auto later = [](const Entry& a, const Entry& b) {
      if (a.bound != b.bound) return a.bound > b.bound;
      if (a.is_point != b.is_point) return a.is_point;  // nodes first
      return a.index > b.index;
    };
    std::priority_queue<Entry, std::vector<Entry>, decltype(later)> heap(
        later);

    auto dominated = [&](const double* emb) {
      const size_t count = accepted.size() / m;
      const size_t dom = FindDominatorRow(accepted.data(), count, m, emb);
      comparisons += dom == count ? count : dom + 1;
      return dom < count;
    };
    auto push = [&](uint32_t index, bool is_point) {
      const uint32_t slot = static_cast<uint32_t>(pool.size() / m);
      pool.insert(pool.end(), tmp.begin(), tmp.end());
      double bound = 0.0;
      for (size_t j = 0; j < m; ++j) bound += tmp[j];
      heap.push(Entry{bound, index, slot, is_point});
      ++bbs.heap_pushes;
    };
    auto try_push_node = [&](uint32_t node) {
      if (constraint != nullptr && !tree.Intersects(node, *constraint)) {
        return;
      }
      e.Embed(tree.node_lo(node), tmp.data());
      ++embeddings;
      if (dominated(tmp.data())) {
        ++bbs.nodes_pruned;
        return;
      }
      push(node, /*is_point=*/false);
    };
    auto try_push_point = [&](uint32_t row) {
      if (row < tombstones.size() && tombstones[row] != 0) {
        // Erased from the live dataset; the node MBRs that counted this
        // row stay admissible lower bounds, so only the row itself is
        // skipped.
        ++bbs.tombstones_skipped;
        return;
      }
      const std::span<const double> p = points[row];
      if (constraint != nullptr && !constraint->Contains(p)) return;
      e.Embed(p.data(), tmp.data());
      ++embeddings;
      if (dominated(tmp.data())) {
        ++bbs.points_pruned;
        return;
      }
      push(row, /*is_point=*/true);
    };

    try_push_node(tree.root());
    uint64_t pops = 0;
    while (!heap.empty()) {
      if (ctx != nullptr && pops++ % kCtxCheckPops == 0) {
        ECLIPSE_RETURN_IF_ERROR(ctx->Check());
      }
      const Entry top = heap.top();
      heap.pop();
      // Re-check at pop time: the accepted window may have grown since the
      // push-time test.
      const double* emb = pool.data() + static_cast<size_t>(top.slot) * m;
      if (dominated(emb)) {
        ++(top.is_point ? bbs.points_pruned : bbs.nodes_pruned);
        continue;
      }
      if (top.is_point) {
        // Minimal remaining sum and not properly dominated by any accepted
        // row: every potential dominator has a strictly smaller sum and was
        // already popped (or pruned by a row that also dominates this one),
        // so the point is a final skyline member.
        accepted.insert(accepted.end(), emb, emb + m);
        out.push_back(top.index);
        ++bbs.points_accepted;
        continue;
      }
      ++bbs.nodes_visited;
      const std::span<const uint32_t> entries = tree.entries(top.index);
      if (tree.is_leaf(top.index)) {
        ++bbs.leaves_scanned;
        for (uint32_t row : entries) try_push_point(row);
      } else {
        for (uint32_t child : entries) try_push_node(child);
      }
    }
    std::sort(out.begin(), out.end());
  }

  if (stats != nullptr) {
    stats->Add(Ticker::kIndexNodesVisited, bbs.nodes_visited);
    stats->Add(Ticker::kIndexLeavesScanned, bbs.leaves_scanned);
    stats->Add(Ticker::kSkylineComparisons, comparisons);
    if (e.kernel != nullptr) {
      stats->Add(Ticker::kCornerScoreEvaluations, embeddings * m);
    }
  }
  if (bbs_out != nullptr) *bbs_out = bbs;
  return out;
}

}  // namespace

Result<std::vector<PointId>> BbsSkyline(const PointSet& points,
                                        const PackedRTree& tree,
                                        const Box* constraint,
                                        Statistics* stats, BbsStats* bbs,
                                        std::span<const uint8_t> tombstones,
                                        const QueryContext* ctx) {
  if (points.dims() == 0) {
    return Status::InvalidArgument("BBS: zero-dimensional data");
  }
  const Embedder e{nullptr, points.dims(), points.dims()};
  return BbsCore(points, tree, e, constraint, stats, bbs, tombstones, ctx);
}

Result<std::vector<PointId>> BbsEclipse(const PointSet& points,
                                        const PackedRTree& tree,
                                        const RatioBox& box,
                                        size_t max_corner_dims,
                                        const Box* constraint,
                                        Statistics* stats, BbsStats* bbs,
                                        std::span<const uint8_t> tombstones,
                                        const QueryContext* ctx) {
  if (points.dims() < 2) {
    return Status::InvalidArgument("eclipse requires d >= 2 data");
  }
  if (box.dims() != points.dims()) {
    return Status::InvalidArgument(
        StrFormat("ratio box has %zu ranges, expected d-1 = %zu",
                  box.num_ratios(), points.dims() - 1));
  }
  if (box.FreeDims().size() > max_corner_dims) {
    return Status::ResourceExhausted(
        StrFormat("corner embedding would need 2^%zu dims (max 2^%zu)",
                  box.FreeDims().size(), max_corner_dims));
  }
  const CornerKernel kernel(box);
  const Embedder e{&kernel, points.dims(), kernel.embedding_dims()};
  return BbsCore(points, tree, e, constraint, stats, bbs, tombstones, ctx);
}

}  // namespace eclipse
