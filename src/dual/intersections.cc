#include "dual/intersections.h"

#include <cassert>

#include "common/strings.h"

namespace eclipse {

Result<PairTable> PairTable::Build(const DualModel& model, const Box& domain,
                                   size_t max_pairs) {
  if (domain.dims() != model.dual_dims()) {
    return Status::InvalidArgument("PairTable: domain/model dims mismatch");
  }
  PairTable table;
  const size_t k = model.dual_dims();
  table.dual_dims_ = k;
  const size_t u = model.u();
  std::vector<double> diff(k);
  for (size_t a = 0; a + 1 < u; ++a) {
    for (size_t b = a + 1; b < u; ++b) {
      double constant = model.constant(a) - model.constant(b);
      bool all_zero = true;
      for (size_t j = 0; j < k; ++j) {
        diff[j] = model.coeff(a, j) - model.coeff(b, j);
        if (diff[j] != 0.0) all_zero = false;
      }
      if (all_zero) {
        // Parallel hyperplanes: order never changes, no intersection. (Equal
        // hyperplanes cannot occur for distinct points.)
        continue;
      }
      // Keep the pair only if its zero set meets the domain.
      double lo = constant;
      double hi = constant;
      for (size_t j = 0; j < k; ++j) {
        const Interval& s = domain.side(j);
        if (diff[j] >= 0.0) {
          lo += diff[j] * s.lo;
          hi += diff[j] * s.hi;
        } else {
          lo += diff[j] * s.hi;
          hi += diff[j] * s.lo;
        }
      }
      if (lo > 0.0 || hi < 0.0) continue;
      if (table.a_.size() >= max_pairs) {
        return Status::ResourceExhausted(StrFormat(
            "PairTable: more than %zu intersecting pairs in the domain; "
            "narrow the index domain or use a one-shot algorithm",
            max_pairs));
      }
      table.a_.push_back(static_cast<uint32_t>(a));
      table.b_.push_back(static_cast<uint32_t>(b));
      table.coeffs_.insert(table.coeffs_.end(), diff.begin(), diff.end());
      table.constants_.push_back(constant);
    }
  }
  return table;
}

Result<PairTable> PairTable::FromParts(size_t dual_dims,
                                       std::vector<uint32_t> a,
                                       std::vector<uint32_t> b,
                                       std::vector<double> coeffs,
                                       std::vector<double> constants) {
  if (dual_dims == 0 || a.size() != b.size() ||
      coeffs.size() != a.size() * dual_dims || constants.size() != a.size()) {
    return Status::InvalidArgument("PairTable::FromParts: inconsistent sizes");
  }
  PairTable table;
  table.dual_dims_ = dual_dims;
  table.a_ = std::move(a);
  table.b_ = std::move(b);
  table.coeffs_ = std::move(coeffs);
  table.constants_ = std::move(constants);
  return table;
}

double PairTable::Evaluate(size_t pair, std::span<const double> x) const {
  assert(x.size() == dual_dims_);
  double acc = constants_[pair];
  const double* c = coeffs_.data() + pair * dual_dims_;
  for (size_t j = 0; j < dual_dims_; ++j) acc += c[j] * x[j];
  return acc;
}

Interval PairTable::RangeOverBox(size_t pair, const Box& box) const {
  assert(box.dims() == dual_dims_);
  double lo = constants_[pair];
  double hi = lo;
  const double* c = coeffs_.data() + pair * dual_dims_;
  for (size_t j = 0; j < dual_dims_; ++j) {
    const Interval& s = box.side(j);
    if (c[j] >= 0.0) {
      lo += c[j] * s.lo;
      hi += c[j] * s.hi;
    } else {
      lo += c[j] * s.hi;
      hi += c[j] * s.lo;
    }
  }
  return Interval{lo, hi};
}

}  // namespace eclipse
