#include "dual/order_vector.h"

#include <algorithm>
#include <numeric>

#include "common/strings.h"

namespace eclipse {

int CompareAboveAtCorner(const DualModel& model, size_t a, size_t b,
                         const Box& query) {
  const Point x0 = query.HighCorner();
  const double ha = model.HeightAt(a, x0);
  const double hb = model.HeightAt(b, x0);
  if (ha > hb) return 1;
  if (ha < hb) return -1;
  // Tie at the corner: step into the box one axis at a time. The box lies at
  // x_j <= x0_j, so a height advantage just inside along axis j belongs to
  // the hyperplane with the smaller coefficient.
  for (size_t j = 0; j < query.dims(); ++j) {
    if (query.side(j).degenerate()) continue;
    const double ca = model.coeff(a, j);
    const double cb = model.coeff(b, j);
    if (ca < cb) return 1;
    if (ca > cb) return -1;
  }
  return 0;  // identical over the entire box
}

Result<CornerOrder> ComputeCornerOrder(const DualModel& model,
                                       const Box& query) {
  if (query.dims() != model.dual_dims()) {
    return Status::InvalidArgument(
        StrFormat("query box has %zu dims, dual space has %zu", query.dims(),
                  model.dual_dims()));
  }
  const size_t u = model.u();
  std::vector<uint32_t> order(u);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    int cmp = CompareAboveAtCorner(model, a, b, query);
    if (cmp != 0) return cmp > 0;  // higher first
    return a < b;
  });

  CornerOrder out;
  out.ranks.assign(u, 0);
  uint32_t group_rank = 0;
  for (size_t i = 0; i < u; ++i) {
    if (i > 0 &&
        CompareAboveAtCorner(model, order[i - 1], order[i], query) != 0) {
      group_rank = static_cast<uint32_t>(i);
    }
    out.ranks[order[i]] = group_rank;
  }
  return out;
}

}  // namespace eclipse
