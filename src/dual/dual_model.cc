#include "dual/dual_model.h"

#include <cassert>

namespace eclipse {

Result<DualModel> DualModel::Build(const PointSet& points,
                                   std::vector<PointId> candidate_ids) {
  if (points.dims() < 2) {
    return Status::InvalidArgument("DualModel requires d >= 2");
  }
  DualModel model;
  model.dual_dims_ = points.dims() - 1;
  model.ids_ = std::move(candidate_ids);
  model.coeffs_.reserve(model.ids_.size() * model.dual_dims_);
  model.constants_.reserve(model.ids_.size());
  for (PointId id : model.ids_) {
    if (id >= points.size()) {
      return Status::InvalidArgument("DualModel: candidate id out of range");
    }
    auto p = points[id];
    for (size_t j = 0; j < model.dual_dims_; ++j) {
      model.coeffs_.push_back(p[j]);
    }
    model.constants_.push_back(-p[model.dual_dims_]);
  }
  return model;
}

Result<DualModel> DualModel::FromParts(size_t dual_dims,
                                       std::vector<PointId> ids,
                                       std::vector<double> coeffs,
                                       std::vector<double> constants) {
  if (dual_dims == 0 || coeffs.size() != ids.size() * dual_dims ||
      constants.size() != ids.size()) {
    return Status::InvalidArgument("DualModel::FromParts: inconsistent sizes");
  }
  DualModel model;
  model.dual_dims_ = dual_dims;
  model.ids_ = std::move(ids);
  model.coeffs_ = std::move(coeffs);
  model.constants_ = std::move(constants);
  return model;
}

double DualModel::HeightAt(size_t i, std::span<const double> x) const {
  assert(x.size() == dual_dims_);
  double acc = constants_[i];
  const double* c = coeffs_.data() + i * dual_dims_;
  for (size_t j = 0; j < dual_dims_; ++j) acc += c[j] * x[j];
  return acc;
}

LinearForm DualModel::DifferenceForm(size_t a, size_t b) const {
  std::vector<double> c(dual_dims_);
  for (size_t j = 0; j < dual_dims_; ++j) {
    c[j] = coeff(a, j) - coeff(b, j);
  }
  return LinearForm(std::move(c), constants_[a] - constants_[b]);
}

}  // namespace eclipse
