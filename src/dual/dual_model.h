// DualModel: the dual hyperplanes of the indexed candidate points.
//
// The index pipeline keeps only points that can ever be an eclipse answer
// within the index's query domain; DualModel stores their dual hyperplanes
// (as affine forms over the (d-1)-dimensional slope space) together with the
// mapping back to original point ids.

#ifndef ECLIPSE_DUAL_DUAL_MODEL_H_
#define ECLIPSE_DUAL_DUAL_MODEL_H_

#include <vector>

#include "common/result.h"
#include "geometry/dual.h"
#include "geometry/linear_form.h"
#include "geometry/point.h"

namespace eclipse {

class DualModel {
 public:
  /// Builds the dual hyperplanes of `candidate_ids` (indices into `points`).
  /// Requires d >= 2.
  static Result<DualModel> Build(const PointSet& points,
                                 std::vector<PointId> candidate_ids);

  /// Reassembles a model from its raw arrays (index persistence).
  static Result<DualModel> FromParts(size_t dual_dims,
                                     std::vector<PointId> ids,
                                     std::vector<double> coeffs,
                                     std::vector<double> constants);

  /// Raw arrays (index persistence).
  const std::vector<double>& raw_coeffs() const { return coeffs_; }
  const std::vector<double>& raw_constants() const { return constants_; }

  /// Number of indexed hyperplanes (u in the paper).
  size_t u() const { return ids_.size(); }
  /// Dual space dimensionality: d - 1.
  size_t dual_dims() const { return dual_dims_; }

  PointId original_id(size_t i) const { return ids_[i]; }
  const std::vector<PointId>& original_ids() const { return ids_; }

  /// Coefficient j of hyperplane i (equals the original point's coord j).
  double coeff(size_t i, size_t j) const { return coeffs_[i * dual_dims_ + j]; }
  /// Constant term of hyperplane i (minus the original point's last coord).
  double constant(size_t i) const { return constants_[i]; }

  /// Height of hyperplane i at dual location x: sum_j coeff*x[j] + constant.
  /// At x = -r this equals -S(p_i)_r, so a larger height means a smaller
  /// weighted sum (closer to the hyperplane x_d = 0 from below).
  double HeightAt(size_t i, std::span<const double> x) const;

  /// The difference form h_a - h_b as an owning LinearForm.
  LinearForm DifferenceForm(size_t a, size_t b) const;

 private:
  size_t dual_dims_ = 0;
  std::vector<PointId> ids_;
  std::vector<double> coeffs_;     // u * dual_dims_
  std::vector<double> constants_;  // u
};

}  // namespace eclipse

#endif  // ECLIPSE_DUAL_DUAL_MODEL_H_
