// Corner order: the Order Vector Index's per-query half.
//
// At the query corner x0 = (-l_1, ..., -l_{d-1}) (the dual image of the
// all-lo ratio corner), every indexed hyperplane gets a rank equal to the
// number of hyperplanes strictly above it "just inside" the query box.
// "Just inside" resolves ties at x0 exactly: two hyperplanes equal at x0 are
// ordered by their height derivative stepping into the box along each
// non-degenerate axis in turn (an affine function is determined on the box
// by its corner value and those derivatives, so a full tie means the
// hyperplanes coincide over the entire box).
//
// DESIGN.md finding F2: ranks are immutable; the query engine decrements a
// copy per verified crossing, which is provably order-independent, unlike
// the paper's comparison of mutated counters.

#ifndef ECLIPSE_DUAL_ORDER_VECTOR_H_
#define ECLIPSE_DUAL_ORDER_VECTOR_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "dual/dual_model.h"
#include "geometry/box.h"

namespace eclipse {

struct CornerOrder {
  /// ranks[i] = number of hyperplanes whose key is strictly above i's.
  /// Hyperplanes identical over the whole box share a rank.
  std::vector<uint32_t> ranks;
};

/// `query` is the dual box (side j = [-h_j, -l_j]); x0 is its high corner.
Result<CornerOrder> ComputeCornerOrder(const DualModel& model,
                                       const Box& query);

/// Exact "a is above b just inside the box from x0" comparison; returns
/// +1 (above), -1 (below), or 0 (identical over the box). Exposed for tests.
int CompareAboveAtCorner(const DualModel& model, size_t a, size_t b,
                         const Box& query);

}  // namespace eclipse

#endif  // ECLIPSE_DUAL_ORDER_VECTOR_H_
