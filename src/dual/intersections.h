// PairTable: the Intersection Index's payload.
//
// For every pair (a, b) of indexed dual hyperplanes, the difference form
// g_ab(x) = h_a(x) - h_b(x) is affine over the dual slope space; its zero
// set is the (d-2)-dimensional intersection hyperplane. A pair "crosses" a
// query box when g_ab takes both strict signs inside it, in which case
// neither point eclipse-dominates the other over that query. The table
// stores, in flat arrays, every pair whose intersection meets the index
// domain (pairs that never cross the domain keep a fixed order for every
// query inside it and are irrelevant).

#ifndef ECLIPSE_DUAL_INTERSECTIONS_H_
#define ECLIPSE_DUAL_INTERSECTIONS_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/statistics.h"
#include "dual/dual_model.h"
#include "geometry/box.h"

namespace eclipse {

class PairTable {
 public:
  /// Enumerates all u*(u-1)/2 pairs of `model`, keeping those whose
  /// difference form has a zero inside (or touching) `domain`. Fails with
  /// ResourceExhausted when more than `max_pairs` pairs survive.
  static Result<PairTable> Build(const DualModel& model, const Box& domain,
                                 size_t max_pairs);

  /// Reassembles a table from its raw arrays (index persistence).
  static Result<PairTable> FromParts(size_t dual_dims,
                                     std::vector<uint32_t> a,
                                     std::vector<uint32_t> b,
                                     std::vector<double> coeffs,
                                     std::vector<double> constants);

  /// Raw arrays (index persistence).
  const std::vector<uint32_t>& raw_a() const { return a_; }
  const std::vector<uint32_t>& raw_b() const { return b_; }
  const std::vector<double>& raw_coeffs() const { return coeffs_; }
  const std::vector<double>& raw_constants() const { return constants_; }

  size_t size() const { return a_.size(); }
  size_t dual_dims() const { return dual_dims_; }

  uint32_t a(size_t pair) const { return a_[pair]; }
  uint32_t b(size_t pair) const { return b_[pair]; }

  /// Coefficient j of the difference form of `pair`.
  double coeff(size_t pair, size_t j) const {
    return coeffs_[pair * dual_dims_ + j];
  }
  double constant(size_t pair) const { return constants_[pair]; }

  double Evaluate(size_t pair, std::span<const double> x) const;

  /// Exact range of g over a box (interval arithmetic, no allocation).
  Interval RangeOverBox(size_t pair, const Box& box) const;

  /// Zero set meets the closed box (used for index cell assignment: never
  /// misses, may include boundary touches).
  bool TouchesBox(size_t pair, const Box& box) const {
    Interval r = RangeOverBox(pair, box);
    return r.lo <= 0.0 && r.hi >= 0.0;
  }

  /// Zero set crosses the box interior with a strict sign change (the exact
  /// "neither dominates" verification used at query time).
  bool CrossesInterior(size_t pair, const Box& box) const {
    Interval r = RangeOverBox(pair, box);
    return r.lo < 0.0 && r.hi > 0.0;
  }

  /// In 2D (dual_dims == 1) the zero set is a single x; exposed for the
  /// sorted-abscissa index. Requires dual_dims() == 1 and a non-parallel
  /// pair (guaranteed for pairs kept by Build, see implementation).
  double IntersectionX(size_t pair) const {
    return -constants_[pair] / coeffs_[pair];
  }

 private:
  size_t dual_dims_ = 0;
  std::vector<uint32_t> a_, b_;
  std::vector<double> coeffs_;     // pair * dual_dims_
  std::vector<double> constants_;  // pair
};

}  // namespace eclipse

#endif  // ECLIPSE_DUAL_INTERSECTIONS_H_
