#!/usr/bin/env python3
"""Validate a Prometheus text-exposition (0.0.4) page.

Structural checks:
  * every line is a comment, blank, or `name[{labels}] value`
  * metric names match [a-zA-Z_:][a-zA-Z0-9_:]* and label names
    [a-zA-Z_][a-zA-Z0-9_]*; label values are double-quoted with only
    \\\\, \\", and \\n escapes
  * exactly one `# TYPE` per base metric name, emitted before its samples
  * histogram series are complete and coherent: cumulative nondecreasing
    buckets ending in le="+Inf", with _count == the +Inf bucket and a _sum

Usage:
  check_prometheus.py page.txt [--require name=value ...]

--require asserts a sample's exact value (label-less samples only), e.g.
  --require engine_query_count=3
Exits nonzero with a message on the first violation.
"""

import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
# A quoted label value: any run of non-escape chars or a legal escape.
LABEL_VALUE_RE = re.compile(r'^(?:[^"\\\n]|\\\\|\\"|\\n)*$')
SAMPLE_RE = re.compile(r"^(?P<name>[^{\s]+)(?:\{(?P<labels>.*)\})?\s+"
                       r"(?P<value>[^\s]+)$")


def fail(lineno, line, message):
    raise SystemExit(f"line {lineno}: {message}\n  {line}")


def split_labels(raw):
    """Split `a="x",b="y"` on commas outside quotes."""
    parts, depth, start = [], False, 0
    i = 0
    while i < len(raw):
        c = raw[i]
        if c == "\\":
            i += 2
            continue
        if c == '"':
            depth = not depth
        elif c == "," and not depth:
            parts.append(raw[start:i])
            start = i + 1
        i += 1
    tail = raw[start:]
    if tail:
        parts.append(tail)
    return parts


def base_name(name):
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def check(text, requirements):
    typed = {}          # base name -> declared type
    samples = {}        # plain (label-less) name -> float value
    histograms = {}     # base name -> {"buckets": [(le, v)], "sum": v,
                        #               "count": v}
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            fields = line.split(None, 3)
            if len(fields) >= 2 and fields[1] == "TYPE":
                if len(fields) != 4:
                    fail(lineno, line, "malformed # TYPE")
                _, _, name, kind = fields
                if not NAME_RE.match(name):
                    fail(lineno, line, f"invalid metric name {name!r}")
                if kind not in ("counter", "gauge", "histogram",
                                "summary", "untyped"):
                    fail(lineno, line, f"unknown type {kind!r}")
                if name in typed:
                    fail(lineno, line, f"duplicate # TYPE for {name}")
                typed[name] = kind
            continue
        m = SAMPLE_RE.match(line)
        if not m:
            fail(lineno, line, "not a sample line")
        name, labels, value = m.group("name", "labels", "value")
        if not NAME_RE.match(name):
            fail(lineno, line, f"invalid metric name {name!r}")
        base = base_name(name)
        declared = typed.get(base) or typed.get(name)
        if declared is None:
            fail(lineno, line, f"sample before any # TYPE for {name}")
        try:
            number = float(value)
        except ValueError:
            fail(lineno, line, f"non-numeric value {value!r}")
        label_map = {}
        if labels is not None:
            for pair in split_labels(labels):
                if "=" not in pair:
                    fail(lineno, line, f"malformed label {pair!r}")
                lname, _, lvalue = pair.partition("=")
                if not LABEL_NAME_RE.match(lname):
                    fail(lineno, line, f"invalid label name {lname!r}")
                if (len(lvalue) < 2 or lvalue[0] != '"'
                        or lvalue[-1] != '"'):
                    fail(lineno, line, f"unquoted label value {lvalue!r}")
                if not LABEL_VALUE_RE.match(lvalue[1:-1]):
                    fail(lineno, line, f"bad escape in {lvalue!r}")
                label_map[lname] = lvalue[1:-1]
        if declared == "histogram" and base != name:
            series = histograms.setdefault(
                base, {"buckets": [], "sum": None, "count": None})
            if name.endswith("_bucket"):
                if "le" not in label_map:
                    fail(lineno, line, "histogram bucket without le=")
                series["buckets"].append((label_map["le"], number))
            elif name.endswith("_sum"):
                series["sum"] = number
            elif name.endswith("_count"):
                series["count"] = number
        elif not label_map:
            samples[name] = number

    for base, series in histograms.items():
        buckets = series["buckets"]
        if not buckets or buckets[-1][0] != "+Inf":
            raise SystemExit(f"{base}: buckets must end with le=\"+Inf\"")
        values = [v for _, v in buckets]
        if values != sorted(values):
            raise SystemExit(f"{base}: buckets are not cumulative")
        if series["count"] is None or series["sum"] is None:
            raise SystemExit(f"{base}: missing _count or _sum")
        if series["count"] != values[-1]:
            raise SystemExit(
                f"{base}: _count {series['count']} != +Inf bucket "
                f"{values[-1]}")

    for requirement in requirements:
        name, _, expected = requirement.partition("=")
        if name not in samples:
            raise SystemExit(f"--require {name}: no such label-less sample "
                             f"(have: {', '.join(sorted(samples)) or 'none'})")
        if samples[name] != float(expected):
            raise SystemExit(f"--require {name}: got {samples[name]}, "
                             f"want {expected}")

    return len(samples), len(histograms)


def main(argv):
    if len(argv) < 2:
        raise SystemExit(__doc__)
    path = argv[1]
    requirements = []
    rest = argv[2:]
    while rest:
        if rest[0] == "--require" and len(rest) >= 2:
            requirements.append(rest[1])
            rest = rest[2:]
        else:
            raise SystemExit(f"unknown argument {rest[0]!r}")
    text = sys.stdin.read() if path == "-" else open(path).read()
    n_samples, n_histograms = check(text, requirements)
    print(f"prometheus OK: {n_samples} plain sample(s), "
          f"{n_histograms} histogram(s), {len(requirements)} required "
          f"value(s) matched")


if __name__ == "__main__":
    main(sys.argv)
