file(REMOVE_RECURSE
  "CMakeFiles/preference_elicitation.dir/examples/preference_elicitation.cc.o"
  "CMakeFiles/preference_elicitation.dir/examples/preference_elicitation.cc.o.d"
  "examples/preference_elicitation"
  "examples/preference_elicitation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/preference_elicitation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
