# Empty dependencies file for preference_elicitation.
# This may be replaced when dependencies are built.
