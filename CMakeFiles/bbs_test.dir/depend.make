# Empty dependencies file for bbs_test.
# This may be replaced when dependencies are built.
