file(REMOVE_RECURSE
  "CMakeFiles/bbs_test.dir/tests/bbs_test.cc.o"
  "CMakeFiles/bbs_test.dir/tests/bbs_test.cc.o.d"
  "bbs_test"
  "bbs_test.pdb"
  "bbs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bbs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
