file(REMOVE_RECURSE
  "CMakeFiles/bench_table05_user_study.dir/bench/bench_table05_user_study.cc.o"
  "CMakeFiles/bench_table05_user_study.dir/bench/bench_table05_user_study.cc.o.d"
  "bench/bench_table05_user_study"
  "bench/bench_table05_user_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table05_user_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
