# Empty dependencies file for bench_table05_user_study.
# This may be replaced when dependencies are built.
