file(REMOVE_RECURSE
  "CMakeFiles/engine_concurrency_test.dir/tests/engine_concurrency_test.cc.o"
  "CMakeFiles/engine_concurrency_test.dir/tests/engine_concurrency_test.cc.o.d"
  "engine_concurrency_test"
  "engine_concurrency_test.pdb"
  "engine_concurrency_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_concurrency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
