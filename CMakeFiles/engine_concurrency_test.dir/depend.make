# Empty dependencies file for engine_concurrency_test.
# This may be replaced when dependencies are built.
