file(REMOVE_RECURSE
  "libeclipse_lib.a"
)
