
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/benchlib/latency.cc" "CMakeFiles/eclipse_lib.dir/src/benchlib/latency.cc.o" "gcc" "CMakeFiles/eclipse_lib.dir/src/benchlib/latency.cc.o.d"
  "/root/repo/src/benchlib/sweep.cc" "CMakeFiles/eclipse_lib.dir/src/benchlib/sweep.cc.o" "gcc" "CMakeFiles/eclipse_lib.dir/src/benchlib/sweep.cc.o.d"
  "/root/repo/src/benchlib/table.cc" "CMakeFiles/eclipse_lib.dir/src/benchlib/table.cc.o" "gcc" "CMakeFiles/eclipse_lib.dir/src/benchlib/table.cc.o.d"
  "/root/repo/src/benchlib/workloads.cc" "CMakeFiles/eclipse_lib.dir/src/benchlib/workloads.cc.o" "gcc" "CMakeFiles/eclipse_lib.dir/src/benchlib/workloads.cc.o.d"
  "/root/repo/src/common/io.cc" "CMakeFiles/eclipse_lib.dir/src/common/io.cc.o" "gcc" "CMakeFiles/eclipse_lib.dir/src/common/io.cc.o.d"
  "/root/repo/src/common/random.cc" "CMakeFiles/eclipse_lib.dir/src/common/random.cc.o" "gcc" "CMakeFiles/eclipse_lib.dir/src/common/random.cc.o.d"
  "/root/repo/src/common/statistics.cc" "CMakeFiles/eclipse_lib.dir/src/common/statistics.cc.o" "gcc" "CMakeFiles/eclipse_lib.dir/src/common/statistics.cc.o.d"
  "/root/repo/src/common/status.cc" "CMakeFiles/eclipse_lib.dir/src/common/status.cc.o" "gcc" "CMakeFiles/eclipse_lib.dir/src/common/status.cc.o.d"
  "/root/repo/src/common/strings.cc" "CMakeFiles/eclipse_lib.dir/src/common/strings.cc.o" "gcc" "CMakeFiles/eclipse_lib.dir/src/common/strings.cc.o.d"
  "/root/repo/src/common/thread_pool.cc" "CMakeFiles/eclipse_lib.dir/src/common/thread_pool.cc.o" "gcc" "CMakeFiles/eclipse_lib.dir/src/common/thread_pool.cc.o.d"
  "/root/repo/src/core/baseline.cc" "CMakeFiles/eclipse_lib.dir/src/core/baseline.cc.o" "gcc" "CMakeFiles/eclipse_lib.dir/src/core/baseline.cc.o.d"
  "/root/repo/src/core/corner_kernel.cc" "CMakeFiles/eclipse_lib.dir/src/core/corner_kernel.cc.o" "gcc" "CMakeFiles/eclipse_lib.dir/src/core/corner_kernel.cc.o.d"
  "/root/repo/src/core/corner_skyline.cc" "CMakeFiles/eclipse_lib.dir/src/core/corner_skyline.cc.o" "gcc" "CMakeFiles/eclipse_lib.dir/src/core/corner_skyline.cc.o.d"
  "/root/repo/src/core/eclipse_index.cc" "CMakeFiles/eclipse_lib.dir/src/core/eclipse_index.cc.o" "gcc" "CMakeFiles/eclipse_lib.dir/src/core/eclipse_index.cc.o.d"
  "/root/repo/src/core/index_io.cc" "CMakeFiles/eclipse_lib.dir/src/core/index_io.cc.o" "gcc" "CMakeFiles/eclipse_lib.dir/src/core/index_io.cc.o.d"
  "/root/repo/src/core/ratio_box.cc" "CMakeFiles/eclipse_lib.dir/src/core/ratio_box.cc.o" "gcc" "CMakeFiles/eclipse_lib.dir/src/core/ratio_box.cc.o.d"
  "/root/repo/src/core/relationships.cc" "CMakeFiles/eclipse_lib.dir/src/core/relationships.cc.o" "gcc" "CMakeFiles/eclipse_lib.dir/src/core/relationships.cc.o.d"
  "/root/repo/src/core/suggest_range.cc" "CMakeFiles/eclipse_lib.dir/src/core/suggest_range.cc.o" "gcc" "CMakeFiles/eclipse_lib.dir/src/core/suggest_range.cc.o.d"
  "/root/repo/src/core/transform2d.cc" "CMakeFiles/eclipse_lib.dir/src/core/transform2d.cc.o" "gcc" "CMakeFiles/eclipse_lib.dir/src/core/transform2d.cc.o.d"
  "/root/repo/src/core/transform_hd.cc" "CMakeFiles/eclipse_lib.dir/src/core/transform_hd.cc.o" "gcc" "CMakeFiles/eclipse_lib.dir/src/core/transform_hd.cc.o.d"
  "/root/repo/src/dataset/adversarial.cc" "CMakeFiles/eclipse_lib.dir/src/dataset/adversarial.cc.o" "gcc" "CMakeFiles/eclipse_lib.dir/src/dataset/adversarial.cc.o.d"
  "/root/repo/src/dataset/columnar.cc" "CMakeFiles/eclipse_lib.dir/src/dataset/columnar.cc.o" "gcc" "CMakeFiles/eclipse_lib.dir/src/dataset/columnar.cc.o.d"
  "/root/repo/src/dataset/csv.cc" "CMakeFiles/eclipse_lib.dir/src/dataset/csv.cc.o" "gcc" "CMakeFiles/eclipse_lib.dir/src/dataset/csv.cc.o.d"
  "/root/repo/src/dataset/generators.cc" "CMakeFiles/eclipse_lib.dir/src/dataset/generators.cc.o" "gcc" "CMakeFiles/eclipse_lib.dir/src/dataset/generators.cc.o.d"
  "/root/repo/src/dataset/nba_synth.cc" "CMakeFiles/eclipse_lib.dir/src/dataset/nba_synth.cc.o" "gcc" "CMakeFiles/eclipse_lib.dir/src/dataset/nba_synth.cc.o.d"
  "/root/repo/src/dataset/transforms.cc" "CMakeFiles/eclipse_lib.dir/src/dataset/transforms.cc.o" "gcc" "CMakeFiles/eclipse_lib.dir/src/dataset/transforms.cc.o.d"
  "/root/repo/src/diagram/eclipse_diagram.cc" "CMakeFiles/eclipse_lib.dir/src/diagram/eclipse_diagram.cc.o" "gcc" "CMakeFiles/eclipse_lib.dir/src/diagram/eclipse_diagram.cc.o.d"
  "/root/repo/src/dual/dual_model.cc" "CMakeFiles/eclipse_lib.dir/src/dual/dual_model.cc.o" "gcc" "CMakeFiles/eclipse_lib.dir/src/dual/dual_model.cc.o.d"
  "/root/repo/src/dual/intersections.cc" "CMakeFiles/eclipse_lib.dir/src/dual/intersections.cc.o" "gcc" "CMakeFiles/eclipse_lib.dir/src/dual/intersections.cc.o.d"
  "/root/repo/src/dual/order_vector.cc" "CMakeFiles/eclipse_lib.dir/src/dual/order_vector.cc.o" "gcc" "CMakeFiles/eclipse_lib.dir/src/dual/order_vector.cc.o.d"
  "/root/repo/src/engine/eclipse_engine.cc" "CMakeFiles/eclipse_lib.dir/src/engine/eclipse_engine.cc.o" "gcc" "CMakeFiles/eclipse_lib.dir/src/engine/eclipse_engine.cc.o.d"
  "/root/repo/src/engine/registry.cc" "CMakeFiles/eclipse_lib.dir/src/engine/registry.cc.o" "gcc" "CMakeFiles/eclipse_lib.dir/src/engine/registry.cc.o.d"
  "/root/repo/src/engine/result_cache.cc" "CMakeFiles/eclipse_lib.dir/src/engine/result_cache.cc.o" "gcc" "CMakeFiles/eclipse_lib.dir/src/engine/result_cache.cc.o.d"
  "/root/repo/src/fault/fault_injection.cc" "CMakeFiles/eclipse_lib.dir/src/fault/fault_injection.cc.o" "gcc" "CMakeFiles/eclipse_lib.dir/src/fault/fault_injection.cc.o.d"
  "/root/repo/src/geometry/box.cc" "CMakeFiles/eclipse_lib.dir/src/geometry/box.cc.o" "gcc" "CMakeFiles/eclipse_lib.dir/src/geometry/box.cc.o.d"
  "/root/repo/src/geometry/dual.cc" "CMakeFiles/eclipse_lib.dir/src/geometry/dual.cc.o" "gcc" "CMakeFiles/eclipse_lib.dir/src/geometry/dual.cc.o.d"
  "/root/repo/src/geometry/line2d.cc" "CMakeFiles/eclipse_lib.dir/src/geometry/line2d.cc.o" "gcc" "CMakeFiles/eclipse_lib.dir/src/geometry/line2d.cc.o.d"
  "/root/repo/src/geometry/linear_form.cc" "CMakeFiles/eclipse_lib.dir/src/geometry/linear_form.cc.o" "gcc" "CMakeFiles/eclipse_lib.dir/src/geometry/linear_form.cc.o.d"
  "/root/repo/src/geometry/point.cc" "CMakeFiles/eclipse_lib.dir/src/geometry/point.cc.o" "gcc" "CMakeFiles/eclipse_lib.dir/src/geometry/point.cc.o.d"
  "/root/repo/src/hull/convex_hull_2d.cc" "CMakeFiles/eclipse_lib.dir/src/hull/convex_hull_2d.cc.o" "gcc" "CMakeFiles/eclipse_lib.dir/src/hull/convex_hull_2d.cc.o.d"
  "/root/repo/src/index/cutting_tree.cc" "CMakeFiles/eclipse_lib.dir/src/index/cutting_tree.cc.o" "gcc" "CMakeFiles/eclipse_lib.dir/src/index/cutting_tree.cc.o.d"
  "/root/repo/src/index/index2d.cc" "CMakeFiles/eclipse_lib.dir/src/index/index2d.cc.o" "gcc" "CMakeFiles/eclipse_lib.dir/src/index/index2d.cc.o.d"
  "/root/repo/src/index/line_quadtree.cc" "CMakeFiles/eclipse_lib.dir/src/index/line_quadtree.cc.o" "gcc" "CMakeFiles/eclipse_lib.dir/src/index/line_quadtree.cc.o.d"
  "/root/repo/src/index/order_vector_index2d.cc" "CMakeFiles/eclipse_lib.dir/src/index/order_vector_index2d.cc.o" "gcc" "CMakeFiles/eclipse_lib.dir/src/index/order_vector_index2d.cc.o.d"
  "/root/repo/src/index/packed_rtree.cc" "CMakeFiles/eclipse_lib.dir/src/index/packed_rtree.cc.o" "gcc" "CMakeFiles/eclipse_lib.dir/src/index/packed_rtree.cc.o.d"
  "/root/repo/src/knn/linear_scan.cc" "CMakeFiles/eclipse_lib.dir/src/knn/linear_scan.cc.o" "gcc" "CMakeFiles/eclipse_lib.dir/src/knn/linear_scan.cc.o.d"
  "/root/repo/src/knn/rtree.cc" "CMakeFiles/eclipse_lib.dir/src/knn/rtree.cc.o" "gcc" "CMakeFiles/eclipse_lib.dir/src/knn/rtree.cc.o.d"
  "/root/repo/src/knn/scoring.cc" "CMakeFiles/eclipse_lib.dir/src/knn/scoring.cc.o" "gcc" "CMakeFiles/eclipse_lib.dir/src/knn/scoring.cc.o.d"
  "/root/repo/src/shard/merge.cc" "CMakeFiles/eclipse_lib.dir/src/shard/merge.cc.o" "gcc" "CMakeFiles/eclipse_lib.dir/src/shard/merge.cc.o.d"
  "/root/repo/src/shard/partitioner.cc" "CMakeFiles/eclipse_lib.dir/src/shard/partitioner.cc.o" "gcc" "CMakeFiles/eclipse_lib.dir/src/shard/partitioner.cc.o.d"
  "/root/repo/src/shard/sharded_engine.cc" "CMakeFiles/eclipse_lib.dir/src/shard/sharded_engine.cc.o" "gcc" "CMakeFiles/eclipse_lib.dir/src/shard/sharded_engine.cc.o.d"
  "/root/repo/src/skyline/bbs.cc" "CMakeFiles/eclipse_lib.dir/src/skyline/bbs.cc.o" "gcc" "CMakeFiles/eclipse_lib.dir/src/skyline/bbs.cc.o.d"
  "/root/repo/src/skyline/bnl.cc" "CMakeFiles/eclipse_lib.dir/src/skyline/bnl.cc.o" "gcc" "CMakeFiles/eclipse_lib.dir/src/skyline/bnl.cc.o.d"
  "/root/repo/src/skyline/divide_conquer.cc" "CMakeFiles/eclipse_lib.dir/src/skyline/divide_conquer.cc.o" "gcc" "CMakeFiles/eclipse_lib.dir/src/skyline/divide_conquer.cc.o.d"
  "/root/repo/src/skyline/dominance.cc" "CMakeFiles/eclipse_lib.dir/src/skyline/dominance.cc.o" "gcc" "CMakeFiles/eclipse_lib.dir/src/skyline/dominance.cc.o.d"
  "/root/repo/src/skyline/flat_skyline.cc" "CMakeFiles/eclipse_lib.dir/src/skyline/flat_skyline.cc.o" "gcc" "CMakeFiles/eclipse_lib.dir/src/skyline/flat_skyline.cc.o.d"
  "/root/repo/src/skyline/layers.cc" "CMakeFiles/eclipse_lib.dir/src/skyline/layers.cc.o" "gcc" "CMakeFiles/eclipse_lib.dir/src/skyline/layers.cc.o.d"
  "/root/repo/src/skyline/sfs.cc" "CMakeFiles/eclipse_lib.dir/src/skyline/sfs.cc.o" "gcc" "CMakeFiles/eclipse_lib.dir/src/skyline/sfs.cc.o.d"
  "/root/repo/src/skyline/simd_dominance.cc" "CMakeFiles/eclipse_lib.dir/src/skyline/simd_dominance.cc.o" "gcc" "CMakeFiles/eclipse_lib.dir/src/skyline/simd_dominance.cc.o.d"
  "/root/repo/src/skyline/skyline.cc" "CMakeFiles/eclipse_lib.dir/src/skyline/skyline.cc.o" "gcc" "CMakeFiles/eclipse_lib.dir/src/skyline/skyline.cc.o.d"
  "/root/repo/src/skyline/sort_sweep_2d.cc" "CMakeFiles/eclipse_lib.dir/src/skyline/sort_sweep_2d.cc.o" "gcc" "CMakeFiles/eclipse_lib.dir/src/skyline/sort_sweep_2d.cc.o.d"
  "/root/repo/src/stream/continuous.cc" "CMakeFiles/eclipse_lib.dir/src/stream/continuous.cc.o" "gcc" "CMakeFiles/eclipse_lib.dir/src/stream/continuous.cc.o.d"
  "/root/repo/src/stream/delta_maintainer.cc" "CMakeFiles/eclipse_lib.dir/src/stream/delta_maintainer.cc.o" "gcc" "CMakeFiles/eclipse_lib.dir/src/stream/delta_maintainer.cc.o.d"
  "/root/repo/src/stream/stream_ingestor.cc" "CMakeFiles/eclipse_lib.dir/src/stream/stream_ingestor.cc.o" "gcc" "CMakeFiles/eclipse_lib.dir/src/stream/stream_ingestor.cc.o.d"
  "/root/repo/src/telemetry/histogram.cc" "CMakeFiles/eclipse_lib.dir/src/telemetry/histogram.cc.o" "gcc" "CMakeFiles/eclipse_lib.dir/src/telemetry/histogram.cc.o.d"
  "/root/repo/src/telemetry/metrics_registry.cc" "CMakeFiles/eclipse_lib.dir/src/telemetry/metrics_registry.cc.o" "gcc" "CMakeFiles/eclipse_lib.dir/src/telemetry/metrics_registry.cc.o.d"
  "/root/repo/src/telemetry/slow_log.cc" "CMakeFiles/eclipse_lib.dir/src/telemetry/slow_log.cc.o" "gcc" "CMakeFiles/eclipse_lib.dir/src/telemetry/slow_log.cc.o.d"
  "/root/repo/src/telemetry/trace.cc" "CMakeFiles/eclipse_lib.dir/src/telemetry/trace.cc.o" "gcc" "CMakeFiles/eclipse_lib.dir/src/telemetry/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
