# Empty dependencies file for eclipse_lib.
# This may be replaced when dependencies are built.
