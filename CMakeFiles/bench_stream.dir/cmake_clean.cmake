file(REMOVE_RECURSE
  "CMakeFiles/bench_stream.dir/bench/bench_stream.cc.o"
  "CMakeFiles/bench_stream.dir/bench/bench_stream.cc.o.d"
  "bench/bench_stream"
  "bench/bench_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
