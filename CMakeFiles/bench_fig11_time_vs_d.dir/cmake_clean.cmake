file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_time_vs_d.dir/bench/bench_fig11_time_vs_d.cc.o"
  "CMakeFiles/bench_fig11_time_vs_d.dir/bench/bench_fig11_time_vs_d.cc.o.d"
  "bench/bench_fig11_time_vs_d"
  "bench/bench_fig11_time_vs_d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_time_vs_d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
