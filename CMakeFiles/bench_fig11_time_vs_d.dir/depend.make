# Empty dependencies file for bench_fig11_time_vs_d.
# This may be replaced when dependencies are built.
