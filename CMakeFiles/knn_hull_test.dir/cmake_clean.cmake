file(REMOVE_RECURSE
  "CMakeFiles/knn_hull_test.dir/tests/knn_hull_test.cc.o"
  "CMakeFiles/knn_hull_test.dir/tests/knn_hull_test.cc.o.d"
  "knn_hull_test"
  "knn_hull_test.pdb"
  "knn_hull_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/knn_hull_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
