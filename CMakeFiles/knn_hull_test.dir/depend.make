# Empty dependencies file for knn_hull_test.
# This may be replaced when dependencies are built.
