# Empty dependencies file for bench_fig14_worstcase_d.
# This may be replaced when dependencies are built.
