file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_worstcase_d.dir/bench/bench_fig14_worstcase_d.cc.o"
  "CMakeFiles/bench_fig14_worstcase_d.dir/bench/bench_fig14_worstcase_d.cc.o.d"
  "bench/bench_fig14_worstcase_d"
  "bench/bench_fig14_worstcase_d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_worstcase_d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
