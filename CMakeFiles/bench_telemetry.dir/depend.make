# Empty dependencies file for bench_telemetry.
# This may be replaced when dependencies are built.
