file(REMOVE_RECURSE
  "CMakeFiles/bench_telemetry.dir/bench/bench_telemetry.cc.o"
  "CMakeFiles/bench_telemetry.dir/bench/bench_telemetry.cc.o.d"
  "bench/bench_telemetry"
  "bench/bench_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
