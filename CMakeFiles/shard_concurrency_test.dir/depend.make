# Empty dependencies file for shard_concurrency_test.
# This may be replaced when dependencies are built.
