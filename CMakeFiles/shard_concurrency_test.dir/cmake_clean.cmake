file(REMOVE_RECURSE
  "CMakeFiles/shard_concurrency_test.dir/tests/shard_concurrency_test.cc.o"
  "CMakeFiles/shard_concurrency_test.dir/tests/shard_concurrency_test.cc.o.d"
  "shard_concurrency_test"
  "shard_concurrency_test.pdb"
  "shard_concurrency_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shard_concurrency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
