# Empty dependencies file for nba_allstars.
# This may be replaced when dependencies are built.
