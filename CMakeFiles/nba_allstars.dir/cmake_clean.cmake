file(REMOVE_RECURSE
  "CMakeFiles/nba_allstars.dir/examples/nba_allstars.cc.o"
  "CMakeFiles/nba_allstars.dir/examples/nba_allstars.cc.o.d"
  "examples/nba_allstars"
  "examples/nba_allstars.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nba_allstars.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
