# Empty dependencies file for index_structures_test.
# This may be replaced when dependencies are built.
