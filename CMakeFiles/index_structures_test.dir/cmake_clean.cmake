file(REMOVE_RECURSE
  "CMakeFiles/index_structures_test.dir/tests/index_structures_test.cc.o"
  "CMakeFiles/index_structures_test.dir/tests/index_structures_test.cc.o.d"
  "index_structures_test"
  "index_structures_test.pdb"
  "index_structures_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/index_structures_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
