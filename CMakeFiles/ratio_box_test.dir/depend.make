# Empty dependencies file for ratio_box_test.
# This may be replaced when dependencies are built.
