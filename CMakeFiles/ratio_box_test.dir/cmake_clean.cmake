file(REMOVE_RECURSE
  "CMakeFiles/ratio_box_test.dir/tests/ratio_box_test.cc.o"
  "CMakeFiles/ratio_box_test.dir/tests/ratio_box_test.cc.o.d"
  "ratio_box_test"
  "ratio_box_test.pdb"
  "ratio_box_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ratio_box_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
