# Empty dependencies file for hotel_recommender.
# This may be replaced when dependencies are built.
