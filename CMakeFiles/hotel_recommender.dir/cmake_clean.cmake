file(REMOVE_RECURSE
  "CMakeFiles/hotel_recommender.dir/examples/hotel_recommender.cc.o"
  "CMakeFiles/hotel_recommender.dir/examples/hotel_recommender.cc.o.d"
  "examples/hotel_recommender"
  "examples/hotel_recommender.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotel_recommender.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
