# Empty dependencies file for eclipse_index_test.
# This may be replaced when dependencies are built.
