file(REMOVE_RECURSE
  "CMakeFiles/eclipse_index_test.dir/tests/eclipse_index_test.cc.o"
  "CMakeFiles/eclipse_index_test.dir/tests/eclipse_index_test.cc.o.d"
  "eclipse_index_test"
  "eclipse_index_test.pdb"
  "eclipse_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eclipse_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
