# Empty dependencies file for eclipse_core_test.
# This may be replaced when dependencies are built.
