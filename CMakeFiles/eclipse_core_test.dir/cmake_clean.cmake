file(REMOVE_RECURSE
  "CMakeFiles/eclipse_core_test.dir/tests/eclipse_core_test.cc.o"
  "CMakeFiles/eclipse_core_test.dir/tests/eclipse_core_test.cc.o.d"
  "eclipse_core_test"
  "eclipse_core_test.pdb"
  "eclipse_core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eclipse_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
