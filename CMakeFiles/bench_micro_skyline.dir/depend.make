# Empty dependencies file for bench_micro_skyline.
# This may be replaced when dependencies are built.
