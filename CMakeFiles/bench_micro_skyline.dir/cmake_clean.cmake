file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_skyline.dir/bench/bench_micro_skyline.cc.o"
  "CMakeFiles/bench_micro_skyline.dir/bench/bench_micro_skyline.cc.o.d"
  "bench/bench_micro_skyline"
  "bench/bench_micro_skyline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_skyline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
