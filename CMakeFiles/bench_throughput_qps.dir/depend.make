# Empty dependencies file for bench_throughput_qps.
# This may be replaced when dependencies are built.
