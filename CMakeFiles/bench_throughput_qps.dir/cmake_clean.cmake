file(REMOVE_RECURSE
  "CMakeFiles/bench_throughput_qps.dir/bench/bench_throughput_qps.cc.o"
  "CMakeFiles/bench_throughput_qps.dir/bench/bench_throughput_qps.cc.o.d"
  "bench/bench_throughput_qps"
  "bench/bench_throughput_qps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_throughput_qps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
