# Empty dependencies file for eclipse_cli.
# This may be replaced when dependencies are built.
