file(REMOVE_RECURSE
  "CMakeFiles/eclipse_cli.dir/examples/eclipse_cli.cc.o"
  "CMakeFiles/eclipse_cli.dir/examples/eclipse_cli.cc.o.d"
  "examples/eclipse_cli"
  "examples/eclipse_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eclipse_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
