# Empty dependencies file for bench_table07_count_vs_d.
# This may be replaced when dependencies are built.
