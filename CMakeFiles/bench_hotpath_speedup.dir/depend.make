# Empty dependencies file for bench_hotpath_speedup.
# This may be replaced when dependencies are built.
