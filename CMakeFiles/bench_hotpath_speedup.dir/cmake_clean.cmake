file(REMOVE_RECURSE
  "CMakeFiles/bench_hotpath_speedup.dir/bench/bench_hotpath_speedup.cc.o"
  "CMakeFiles/bench_hotpath_speedup.dir/bench/bench_hotpath_speedup.cc.o.d"
  "bench/bench_hotpath_speedup"
  "bench/bench_hotpath_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hotpath_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
