# Empty dependencies file for flat_skyline_test.
# This may be replaced when dependencies are built.
