file(REMOVE_RECURSE
  "CMakeFiles/flat_skyline_test.dir/tests/flat_skyline_test.cc.o"
  "CMakeFiles/flat_skyline_test.dir/tests/flat_skyline_test.cc.o.d"
  "flat_skyline_test"
  "flat_skyline_test.pdb"
  "flat_skyline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flat_skyline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
