# Empty dependencies file for relationships_test.
# This may be replaced when dependencies are built.
