file(REMOVE_RECURSE
  "CMakeFiles/relationships_test.dir/tests/relationships_test.cc.o"
  "CMakeFiles/relationships_test.dir/tests/relationships_test.cc.o.d"
  "relationships_test"
  "relationships_test.pdb"
  "relationships_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relationships_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
