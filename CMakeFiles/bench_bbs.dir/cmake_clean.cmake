file(REMOVE_RECURSE
  "CMakeFiles/bench_bbs.dir/bench/bench_bbs.cc.o"
  "CMakeFiles/bench_bbs.dir/bench/bench_bbs.cc.o.d"
  "bench/bench_bbs"
  "bench/bench_bbs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bbs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
