# Empty dependencies file for bench_bbs.
# This may be replaced when dependencies are built.
