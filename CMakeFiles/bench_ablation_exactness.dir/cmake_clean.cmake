file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_exactness.dir/bench/bench_ablation_exactness.cc.o"
  "CMakeFiles/bench_ablation_exactness.dir/bench/bench_ablation_exactness.cc.o.d"
  "bench/bench_ablation_exactness"
  "bench/bench_ablation_exactness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_exactness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
