# Empty dependencies file for bench_ablation_exactness.
# This may be replaced when dependencies are built.
