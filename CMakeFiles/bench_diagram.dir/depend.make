# Empty dependencies file for bench_diagram.
# This may be replaced when dependencies are built.
