file(REMOVE_RECURSE
  "CMakeFiles/bench_diagram.dir/bench/bench_diagram.cc.o"
  "CMakeFiles/bench_diagram.dir/bench/bench_diagram.cc.o.d"
  "bench/bench_diagram"
  "bench/bench_diagram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_diagram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
