file(REMOVE_RECURSE
  "CMakeFiles/dual_index_test.dir/tests/dual_index_test.cc.o"
  "CMakeFiles/dual_index_test.dir/tests/dual_index_test.cc.o.d"
  "dual_index_test"
  "dual_index_test.pdb"
  "dual_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dual_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
