# Empty dependencies file for dual_index_test.
# This may be replaced when dependencies are built.
