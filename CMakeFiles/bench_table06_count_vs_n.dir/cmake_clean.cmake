file(REMOVE_RECURSE
  "CMakeFiles/bench_table06_count_vs_n.dir/bench/bench_table06_count_vs_n.cc.o"
  "CMakeFiles/bench_table06_count_vs_n.dir/bench/bench_table06_count_vs_n.cc.o.d"
  "bench/bench_table06_count_vs_n"
  "bench/bench_table06_count_vs_n.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table06_count_vs_n.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
