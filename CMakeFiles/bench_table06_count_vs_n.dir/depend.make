# Empty dependencies file for bench_table06_count_vs_n.
# This may be replaced when dependencies are built.
