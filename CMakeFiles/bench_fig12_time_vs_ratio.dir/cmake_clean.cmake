file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_time_vs_ratio.dir/bench/bench_fig12_time_vs_ratio.cc.o"
  "CMakeFiles/bench_fig12_time_vs_ratio.dir/bench/bench_fig12_time_vs_ratio.cc.o.d"
  "bench/bench_fig12_time_vs_ratio"
  "bench/bench_fig12_time_vs_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_time_vs_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
