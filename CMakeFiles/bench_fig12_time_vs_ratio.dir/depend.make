# Empty dependencies file for bench_fig12_time_vs_ratio.
# This may be replaced when dependencies are built.
