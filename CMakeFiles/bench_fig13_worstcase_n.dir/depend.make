# Empty dependencies file for bench_fig13_worstcase_n.
# This may be replaced when dependencies are built.
