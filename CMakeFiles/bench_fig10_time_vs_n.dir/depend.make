# Empty dependencies file for bench_fig10_time_vs_n.
# This may be replaced when dependencies are built.
