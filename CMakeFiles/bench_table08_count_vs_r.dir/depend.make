# Empty dependencies file for bench_table08_count_vs_r.
# This may be replaced when dependencies are built.
