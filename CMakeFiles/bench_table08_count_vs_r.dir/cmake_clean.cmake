file(REMOVE_RECURSE
  "CMakeFiles/bench_table08_count_vs_r.dir/bench/bench_table08_count_vs_r.cc.o"
  "CMakeFiles/bench_table08_count_vs_r.dir/bench/bench_table08_count_vs_r.cc.o.d"
  "bench/bench_table08_count_vs_r"
  "bench/bench_table08_count_vs_r.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table08_count_vs_r.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
